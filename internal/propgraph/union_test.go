package propgraph

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"seldon/internal/pytoken"
)

// naiveUnion replicates the original event-by-event, edge-by-edge union:
// every event re-added through AddEvent (re-interning its representation
// strings into the output's table), every edge through AddEdge. The
// arena-based, symbol-translating Union must stay byte-identical to it.
func naiveUnion(graphs ...*Graph) *Graph {
	out := New()
	for _, g := range graphs {
		base := len(out.Events)
		for _, e := range g.Events {
			ne := out.AddEvent(e.Kind, e.File, e.Pos, e.Reps())
			ne.Roles = e.Roles
		}
		for src, ss := range g.succs {
			for _, dst := range ss {
				out.AddEdge(base+src, base+dst)
			}
		}
		out.copyEdgeArgs(g, base)
	}
	return out
}

// pseudoGraph builds a deterministic graph with irregular fan-in/fan-out,
// labeled edges, and some isolated vertices.
func pseudoGraph(seed, nEvents int) *Graph {
	g := New()
	kinds := []EventKind{KindCall, KindRead, KindParam}
	for i := 0; i < nEvents; i++ {
		reps := []string{fmt.Sprintf("g%d.f%d", seed, i)}
		if i%3 == 0 {
			reps = append(reps, fmt.Sprintf("f%d", i))
		}
		g.AddEvent(kinds[(seed+i)%len(kinds)], fmt.Sprintf("g%d.py", seed),
			pytoken.Pos{Line: i + 1}, reps)
	}
	for i := 0; i < nEvents*3; i++ {
		src := (seed*31 + i*13) % nEvents
		dst := (seed*17 + i*7 + 1) % nEvents
		switch i % 4 {
		case 0:
			g.AddEdge(src, dst)
		case 1:
			g.AddEdgeArg(src, dst, i%5)
		case 2:
			g.AddEdgeArg(src, dst, ArgReceiver)
		default:
			// Duplicate an earlier edge to exercise dedup in the naive path.
			g.AddEdge(dst, src)
			g.AddEdge(dst, src)
		}
	}
	return g
}

func TestUnionMatchesAddEdgeUnion(t *testing.T) {
	cases := [][]*Graph{
		{},
		{New()},
		{pseudoGraph(1, 12)},
		{pseudoGraph(1, 12), New(), pseudoGraph(2, 7)},
		{pseudoGraph(3, 40), pseudoGraph(4, 25), pseudoGraph(5, 1), pseudoGraph(6, 33)},
	}
	for ci, graphs := range cases {
		got := Union(graphs...)
		want := naiveUnion(graphs...)
		if len(got.Events) != len(want.Events) {
			t.Fatalf("case %d: %d events, want %d", ci, len(got.Events), len(want.Events))
		}
		for id := range want.Events {
			ge, we := got.Events[id], want.Events[id]
			if ge.ID != we.ID || ge.Kind != we.Kind || ge.File != we.File ||
				ge.Pos != we.Pos || ge.Roles != we.Roles ||
				!reflect.DeepEqual(ge.RepIDs, we.RepIDs) ||
				!reflect.DeepEqual(ge.Reps(), we.Reps()) {
				t.Fatalf("case %d: event %d = %+v (reps %v), want %+v (reps %v)",
					ci, id, ge, ge.Reps(), we, we.Reps())
			}
			if !reflect.DeepEqual(got.Succs(id), want.Succs(id)) {
				t.Fatalf("case %d: succs(%d) = %v, want %v", ci, id, got.Succs(id), want.Succs(id))
			}
			if !reflect.DeepEqual(got.Preds(id), want.Preds(id)) {
				t.Fatalf("case %d: preds(%d) = %v, want %v", ci, id, got.Preds(id), want.Preds(id))
			}
			for _, dst := range want.Succs(id) {
				if !reflect.DeepEqual(got.EdgeArgs(id, dst), want.EdgeArgs(id, dst)) {
					t.Fatalf("case %d: edgeArgs(%d,%d) = %v, want %v",
						ci, id, dst, got.EdgeArgs(id, dst), want.EdgeArgs(id, dst))
				}
			}
		}
		var gotBuf, wantBuf bytes.Buffer
		if err := got.Encode(&gotBuf); err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		if err := want.Encode(&wantBuf); err != nil {
			t.Fatalf("case %d: encode naive: %v", ci, err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("case %d: encodings differ", ci)
		}
		// The binary codec leads with the symbol table, so this also pins
		// that symbol translation assigns the exact IDs re-interning would.
		if !bytes.Equal(got.AppendBinary(nil), want.AppendBinary(nil)) {
			t.Fatalf("case %d: binary encodings differ", ci)
		}
	}
}

// TestUnionAllocBudget pins the arena allocation strategy: merging a
// ~1k-event dataset must stay within a fixed allocation budget — roughly
// the fixed arenas, one translation array per input, and the interning of
// each distinct representation — rather than scaling with events or edges.
func TestUnionAllocBudget(t *testing.T) {
	graphs := make([]*Graph, 8)
	nEvents := 0
	for i := range graphs {
		graphs[i] = pseudoGraph(i, 125)
		nEvents += len(graphs[i].Events)
	}
	if nEvents < 1000 {
		t.Fatalf("fixture too small: %d events", nEvents)
	}
	allocs := testing.AllocsPerRun(10, func() { Union(graphs...) })
	// The distinct-symbol count (~1.3k across the inputs) dominates the
	// budget via map inserts; the per-event and per-edge costs must stay
	// amortized into the arenas. 2×events would signal a regression to
	// per-event allocation.
	if budget := 2000.0; allocs > budget {
		t.Errorf("Union allocs/run = %.0f, budget %.0f", allocs, budget)
	}
}

func BenchmarkUnion(b *testing.B) {
	graphs := make([]*Graph, 64)
	for i := range graphs {
		graphs[i] = pseudoGraph(i, 120)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(graphs...)
	}
}

func BenchmarkUnionNaive(b *testing.B) {
	graphs := make([]*Graph, 64)
	for i := range graphs {
		graphs[i] = pseudoGraph(i, 120)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveUnion(graphs...)
	}
}
