package propgraph

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"seldon/internal/pytoken"
)

// naiveUnion replicates the original per-edge AddEdge-based union. The
// bulk-copying Union must stay byte-identical to it.
func naiveUnion(graphs ...*Graph) *Graph {
	out := New()
	for _, g := range graphs {
		base := len(out.Events)
		for _, e := range g.Events {
			ne := *e
			ne.ID = base + e.ID
			out.Events = append(out.Events, &ne)
			out.succs = append(out.succs, nil)
			out.preds = append(out.preds, nil)
		}
		for src, ss := range g.succs {
			for _, dst := range ss {
				out.AddEdge(base+src, base+dst)
			}
		}
		out.copyEdgeArgs(g, base)
	}
	return out
}

// pseudoGraph builds a deterministic graph with irregular fan-in/fan-out,
// labeled edges, and some isolated vertices.
func pseudoGraph(seed, nEvents int) *Graph {
	g := New()
	kinds := []EventKind{KindCall, KindRead, KindParam}
	for i := 0; i < nEvents; i++ {
		reps := []string{fmt.Sprintf("g%d.f%d", seed, i)}
		if i%3 == 0 {
			reps = append(reps, fmt.Sprintf("f%d", i))
		}
		g.AddEvent(kinds[(seed+i)%len(kinds)], fmt.Sprintf("g%d.py", seed),
			pytoken.Pos{Line: i + 1}, reps)
	}
	for i := 0; i < nEvents*3; i++ {
		src := (seed*31 + i*13) % nEvents
		dst := (seed*17 + i*7 + 1) % nEvents
		switch i % 4 {
		case 0:
			g.AddEdge(src, dst)
		case 1:
			g.AddEdgeArg(src, dst, i%5)
		case 2:
			g.AddEdgeArg(src, dst, ArgReceiver)
		default:
			// Duplicate an earlier edge to exercise dedup in the naive path.
			g.AddEdge(dst, src)
			g.AddEdge(dst, src)
		}
	}
	return g
}

func TestUnionMatchesAddEdgeUnion(t *testing.T) {
	cases := [][]*Graph{
		{},
		{New()},
		{pseudoGraph(1, 12)},
		{pseudoGraph(1, 12), New(), pseudoGraph(2, 7)},
		{pseudoGraph(3, 40), pseudoGraph(4, 25), pseudoGraph(5, 1), pseudoGraph(6, 33)},
	}
	for ci, graphs := range cases {
		got := Union(graphs...)
		want := naiveUnion(graphs...)
		if len(got.Events) != len(want.Events) {
			t.Fatalf("case %d: %d events, want %d", ci, len(got.Events), len(want.Events))
		}
		for id := range want.Events {
			if !reflect.DeepEqual(got.Events[id], want.Events[id]) {
				t.Fatalf("case %d: event %d = %+v, want %+v", ci, id, got.Events[id], want.Events[id])
			}
			if !reflect.DeepEqual(got.Succs(id), want.Succs(id)) {
				t.Fatalf("case %d: succs(%d) = %v, want %v", ci, id, got.Succs(id), want.Succs(id))
			}
			if !reflect.DeepEqual(got.Preds(id), want.Preds(id)) {
				t.Fatalf("case %d: preds(%d) = %v, want %v", ci, id, got.Preds(id), want.Preds(id))
			}
			for _, dst := range want.Succs(id) {
				if !reflect.DeepEqual(got.EdgeArgs(id, dst), want.EdgeArgs(id, dst)) {
					t.Fatalf("case %d: edgeArgs(%d,%d) = %v, want %v",
						ci, id, dst, got.EdgeArgs(id, dst), want.EdgeArgs(id, dst))
				}
			}
		}
		var gotBuf, wantBuf bytes.Buffer
		if err := got.Encode(&gotBuf); err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		if err := want.Encode(&wantBuf); err != nil {
			t.Fatalf("case %d: encode naive: %v", ci, err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("case %d: encodings differ", ci)
		}
	}
}

func BenchmarkUnion(b *testing.B) {
	graphs := make([]*Graph, 64)
	for i := range graphs {
		graphs[i] = pseudoGraph(i, 120)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(graphs...)
	}
}

func BenchmarkUnionNaive(b *testing.B) {
	graphs := make([]*Graph, 64)
	for i := range graphs {
		graphs[i] = pseudoGraph(i, 120)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveUnion(graphs...)
	}
}
