// Package propgraph defines propagation graphs: the events of a program
// that may propagate tainted information and the information-flow edges
// between them (paper §3).
//
// Events are function calls, object reads (attribute loads, subscripts),
// and formal parameters. Each event carries an ordered list of
// representations, from most to least specific, used for backoff during
// learning (§3.2, §4.3). Representations are interned into the graph's
// symbol table (Interner) and carried as dense Sym indices; the strings
// themselves are materialized only on display paths. Two events with
// equal representations remain distinct vertices; Collapse applies
// vertex contraction to obtain the Merlin-style collapsed graph (§6.4).
package propgraph

import (
	"fmt"
	"sort"

	"seldon/internal/pytoken"
)

// EventKind classifies an event.
type EventKind int

// Event kinds.
const (
	KindCall  EventKind = iota // function or method invocation
	KindRead                   // attribute or subscript load
	KindParam                  // formal argument of a function definition
)

func (k EventKind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindRead:
		return "read"
	case KindParam:
		return "param"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Role is a taint role an event can play.
type Role int

// Taint roles.
const (
	Source Role = iota
	Sanitizer
	Sink
	NumRoles // number of roles; keep last
)

func (r Role) String() string {
	switch r {
	case Source:
		return "source"
	case Sanitizer:
		return "sanitizer"
	case Sink:
		return "sink"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Roles returns all roles in canonical order.
func Roles() []Role { return []Role{Source, Sanitizer, Sink} }

// RoleSet is a small set of roles.
type RoleSet uint8

// Role set constructors.
const (
	SourceOnly RoleSet = 1 << Source
	SanOnly    RoleSet = 1 << Sanitizer
	SinkOnly   RoleSet = 1 << Sink
	AllRoles   RoleSet = SourceOnly | SanOnly | SinkOnly
)

// Has reports whether the set contains r.
func (s RoleSet) Has(r Role) bool { return s&(1<<r) != 0 }

// With returns the set extended with r.
func (s RoleSet) With(r Role) RoleSet { return s | 1<<r }

// CandidateRoles returns the roles an event of kind k may take (§5.1):
// calls may be anything; reads and parameters may only be sources.
func CandidateRoles(k EventKind) RoleSet {
	if k == KindCall {
		return AllRoles
	}
	return SourceOnly
}

// Event is a vertex of a propagation graph.
type Event struct {
	ID   int
	Kind EventKind
	File string
	Pos  pytoken.Pos
	// RepIDs lists possible representations as symbols in the owning
	// graph's table, ordered most → least specific. RepIDs[0] interns the
	// fully qualified name used when matching seed specs.
	RepIDs []Sym
	Roles  RoleSet // candidate roles, before blacklisting

	// syms is the owning graph's symbol table, used to materialize the
	// representation strings on demand.
	syms *Interner
}

// NumReps returns the number of representations of the event.
func (e *Event) NumReps() int { return len(e.RepIDs) }

// Rep materializes the i-th representation (0 = most specific).
func (e *Event) Rep(i int) string { return e.syms.Str(e.RepIDs[i]) }

// Reps materializes the representation strings, most → least specific.
// Strings are built lazily on call — hot paths should index RepIDs
// against the graph's symbol table instead.
func (e *Event) Reps() []string {
	if len(e.RepIDs) == 0 {
		return nil
	}
	strs := e.syms.Strings()
	out := make([]string, len(e.RepIDs))
	for i, s := range e.RepIDs {
		out[i] = strs[s]
	}
	return out
}

// dedupDegree is the out-degree above which AddEdge switches from a
// linear duplicate scan to a per-source hash set. Small lists stay on
// the scan (cache-friendly, no allocation); high-fanout events — hub
// calls in big corpora — stop being quadratic.
const dedupDegree = 16

// Graph is a propagation graph. Edges point in the direction of
// information flow. Graphs built by the dataflow analyzer are acyclic
// (loops are analyzed as a single iteration, §5.2).
type Graph struct {
	// Syms interns every representation string of the graph's events;
	// Event.RepIDs index into it.
	Syms   *Interner
	Events []*Event
	succs  [][]int
	preds  [][]int
	// succSet mirrors succs[src] as a set for sources whose out-degree
	// crossed dedupDegree; built lazily by AddEdge.
	succSet map[int]map[int]struct{}
	// edgeArgs labels edges with the argument positions the flow enters
	// through (see args.go); unlabeled edges match any position.
	edgeArgs map[int64][]int
}

// New returns an empty propagation graph with a fresh symbol table.
func New() *Graph { return &Graph{Syms: NewInterner()} }

// AddEvent appends an event, interning its representations, and assigns
// and returns its ID.
func (g *Graph) AddEvent(kind EventKind, file string, pos pytoken.Pos, reps []string) *Event {
	var ids []Sym
	if len(reps) > 0 {
		if g.Syms == nil {
			g.Syms = NewInterner()
		}
		ids = make([]Sym, len(reps))
		for i, r := range reps {
			ids[i] = g.Syms.Intern(r)
		}
	}
	e := &Event{
		ID: len(g.Events), Kind: kind, File: file, Pos: pos,
		RepIDs: ids, Roles: CandidateRoles(kind), syms: g.Syms,
	}
	g.Events = append(g.Events, e)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return e
}

// AddEdge records information flow from src to dst. Self-loops and
// duplicate edges are dropped. Below dedupDegree successors the
// duplicate check is a linear scan; above it a per-source set takes
// over (built once from the current list), so high-fanout sources pay
// O(1) per insertion instead of O(out-degree). Edge order is append
// order either way.
func (g *Graph) AddEdge(src, dst int) {
	if src == dst || src < 0 || dst < 0 || src >= len(g.Events) || dst >= len(g.Events) {
		return
	}
	ss := g.succs[src]
	if len(ss) < dedupDegree {
		for _, s := range ss {
			if s == dst {
				return
			}
		}
	} else {
		set := g.succSet[src]
		if set == nil {
			set = make(map[int]struct{}, len(ss)+1)
			for _, s := range ss {
				set[s] = struct{}{}
			}
			if g.succSet == nil {
				g.succSet = make(map[int]map[int]struct{})
			}
			g.succSet[src] = set
		}
		if _, dup := set[dst]; dup {
			return
		}
		set[dst] = struct{}{}
	}
	g.succs[src] = append(ss, dst)
	g.preds[dst] = append(g.preds[dst], src)
}

// Succs returns the IDs of events receiving flow from id.
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Preds returns the IDs of events flowing into id.
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// Union builds the global propagation graph of a dataset: the disjoint
// union of the per-program graphs (§4, "Learning over a Global Propagation
// Graph"). Event IDs are renumbered; inputs are not modified.
//
// Symbols are remapped from each input's table into the union's global
// table through a per-graph translation array (each distinct string is
// hashed once per input, occurrences are pure integer indexing), and the
// global IDs are assigned in first-seen order over the inputs — so a
// sorted input order yields a deterministic global table.
//
// Adjacency is bulk-copied: the inputs are well-formed graphs (edges
// deduplicated, no self-loops) and the union is disjoint, so the per-edge
// AddEdge duplicate scans are unnecessary. Events, symbol lists, and
// adjacency all carve from single preallocated arenas, and predecessor
// lists are rebuilt in ascending-source order — the order the
// AddEdge-based union produced — so the result is byte-identical to it.
func Union(graphs ...*Graph) *Graph {
	totalEvents, totalReps, totalSuccs := 0, 0, 0
	for _, g := range graphs {
		totalEvents += len(g.Events)
		for _, e := range g.Events {
			totalReps += len(e.RepIDs)
		}
		totalSuccs += g.NumEdges()
	}
	syms := NewInterner()
	out := &Graph{
		Syms:   syms,
		Events: make([]*Event, 0, totalEvents),
		succs:  make([][]int, totalEvents),
		preds:  make([][]int, totalEvents),
	}

	// Events (with symbol translation) and successor lists, then
	// predecessor-list sizes.
	evArena := make([]Event, totalEvents)
	repArena := make([]Sym, 0, totalReps)
	succArena := make([]int, 0, totalSuccs)
	predLen := make([]int, totalEvents)
	for _, g := range graphs {
		xlat := syms.TranslateFrom(g.Syms)
		base := len(out.Events)
		for _, e := range g.Events {
			ne := &evArena[base+e.ID]
			*ne = *e
			ne.ID = base + e.ID
			ne.syms = syms
			if len(e.RepIDs) > 0 {
				start := len(repArena)
				for _, s := range e.RepIDs {
					repArena = append(repArena, xlat[s])
				}
				ne.RepIDs = repArena[start:len(repArena):len(repArena)]
			}
			out.Events = append(out.Events, ne)
		}
		for src, ss := range g.succs {
			if len(ss) == 0 {
				continue
			}
			start := len(succArena)
			for _, dst := range ss {
				succArena = append(succArena, base+dst)
				predLen[base+dst]++
			}
			out.succs[base+src] = succArena[start:len(succArena):len(succArena)]
		}
	}

	// Predecessor lists, carved from one arena, filled in
	// ascending-source order.
	totalPreds := 0
	for _, n := range predLen {
		totalPreds += n
	}
	predArena := make([]int, totalPreds)
	off := 0
	for id, n := range predLen {
		if n > 0 {
			out.preds[id] = predArena[off : off : off+n]
			off += n
		}
	}
	base := 0
	for _, g := range graphs {
		for src, ss := range g.succs {
			for _, dst := range ss {
				out.preds[base+dst] = append(out.preds[base+dst], base+src)
			}
		}
		out.copyEdgeArgs(g, base)
		base += len(g.Events)
	}
	return out
}

// Collapse applies vertex contraction, merging all events that share the
// same most-specific representation into a single vertex (Fig. 7). The
// result is Merlin's collapsed propagation graph (§6.4); it is generally
// unsuitable for taint analysis but usable for specification learning.
// Events without representations are kept as-is. The collapsed graph
// shares the input's symbol table.
func (g *Graph) Collapse() *Graph {
	out := &Graph{Syms: g.Syms}
	classOf := make([]int, len(g.Events))
	// Contract on the most specific representation, qualified by kind so
	// a read and a call never merge; events without representations are
	// never merged.
	byRep := make(map[uint64]int)
	for _, e := range g.Events {
		id := -1
		if len(e.RepIDs) > 0 {
			key := uint64(e.Kind)<<32 | uint64(e.RepIDs[0])
			if prev, ok := byRep[key]; ok {
				// Candidate roles of merged events accumulate.
				out.Events[prev].Roles |= e.Roles
				classOf[e.ID] = prev
				continue
			}
			ne := *e
			ne.ID = len(out.Events)
			out.Events = append(out.Events, &ne)
			out.succs = append(out.succs, nil)
			out.preds = append(out.preds, nil)
			id = ne.ID
			byRep[key] = id
		} else {
			ne := *e
			ne.ID = len(out.Events)
			out.Events = append(out.Events, &ne)
			out.succs = append(out.succs, nil)
			out.preds = append(out.preds, nil)
			id = ne.ID
		}
		classOf[e.ID] = id
	}
	for src, ss := range g.succs {
		for _, dst := range ss {
			out.AddEdge(classOf[src], classOf[dst])
		}
	}
	out.copyEdgeArgsMapped(g, classOf)
	return out
}

// ForwardReachable returns the set of event IDs reachable from start by
// following edges forward, excluding start itself unless it lies on a cycle.
func (g *Graph) ForwardReachable(start int) []int {
	return g.reachable(start, g.succs)
}

// BackwardReachable returns the set of event IDs that can reach start.
func (g *Graph) BackwardReachable(start int) []int {
	return g.reachable(start, g.preds)
}

func (g *Graph) reachable(start int, adj [][]int) []int {
	seen := make(map[int]bool)
	queue := append([]int(nil), adj[start]...)
	var out []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
		queue = append(queue, adj[id]...)
	}
	sort.Ints(out)
	return out
}

// Stats summarizes a propagation graph for reporting (Table 1).
type Stats struct {
	Events      int
	Edges       int
	Candidates  int     // events with at least one representation
	AvgBackoff  float64 // average number of representations per candidate
	CallEvents  int
	ReadEvents  int
	ParamEvents int

	// Symbols counts the distinct representation strings in the graph's
	// table; RepOccurrences counts representation slots across events.
	// Their byte totals quantify what interning saves: SymbolBytes is the
	// footprint of each distinct string stored once, OccurrenceBytes what
	// carrying every slot by value would cost.
	Symbols         int
	RepOccurrences  int
	SymbolBytes     int64
	OccurrenceBytes int64
}

// ComputeStats gathers summary statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{Events: len(g.Events), Edges: g.NumEdges()}
	strs := g.Syms.Strings()
	totalReps := 0
	for _, e := range g.Events {
		switch e.Kind {
		case KindCall:
			st.CallEvents++
		case KindRead:
			st.ReadEvents++
		case KindParam:
			st.ParamEvents++
		}
		if len(e.RepIDs) > 0 {
			st.Candidates++
			totalReps += len(e.RepIDs)
			for _, s := range e.RepIDs {
				st.OccurrenceBytes += int64(len(strs[s]))
			}
		}
	}
	st.RepOccurrences = totalReps
	st.Symbols = g.Syms.Len()
	st.SymbolBytes = g.Syms.Bytes()
	if st.Candidates > 0 {
		st.AvgBackoff = float64(totalReps) / float64(st.Candidates)
	}
	return st
}
