// Package propgraph defines propagation graphs: the events of a program
// that may propagate tainted information and the information-flow edges
// between them (paper §3).
//
// Events are function calls, object reads (attribute loads, subscripts),
// and formal parameters. Each event carries an ordered list of
// representations, from most to least specific, used for backoff during
// learning (§3.2, §4.3). Two events with equal representations remain
// distinct vertices; Collapse applies vertex contraction to obtain the
// Merlin-style collapsed graph (§6.4).
package propgraph

import (
	"fmt"
	"sort"

	"seldon/internal/pytoken"
)

// EventKind classifies an event.
type EventKind int

// Event kinds.
const (
	KindCall  EventKind = iota // function or method invocation
	KindRead                   // attribute or subscript load
	KindParam                  // formal argument of a function definition
)

func (k EventKind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindRead:
		return "read"
	case KindParam:
		return "param"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Role is a taint role an event can play.
type Role int

// Taint roles.
const (
	Source Role = iota
	Sanitizer
	Sink
	NumRoles // number of roles; keep last
)

func (r Role) String() string {
	switch r {
	case Source:
		return "source"
	case Sanitizer:
		return "sanitizer"
	case Sink:
		return "sink"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Roles returns all roles in canonical order.
func Roles() []Role { return []Role{Source, Sanitizer, Sink} }

// RoleSet is a small set of roles.
type RoleSet uint8

// Role set constructors.
const (
	SourceOnly RoleSet = 1 << Source
	SanOnly    RoleSet = 1 << Sanitizer
	SinkOnly   RoleSet = 1 << Sink
	AllRoles   RoleSet = SourceOnly | SanOnly | SinkOnly
)

// Has reports whether the set contains r.
func (s RoleSet) Has(r Role) bool { return s&(1<<r) != 0 }

// With returns the set extended with r.
func (s RoleSet) With(r Role) RoleSet { return s | 1<<r }

// CandidateRoles returns the roles an event of kind k may take (§5.1):
// calls may be anything; reads and parameters may only be sources.
func CandidateRoles(k EventKind) RoleSet {
	if k == KindCall {
		return AllRoles
	}
	return SourceOnly
}

// Event is a vertex of a propagation graph.
type Event struct {
	ID   int
	Kind EventKind
	File string
	Pos  pytoken.Pos
	// Reps lists possible representations, ordered most → least specific.
	// Reps[0] is the fully qualified name used when matching seed specs.
	Reps  []string
	Roles RoleSet // candidate roles, before blacklisting
}

// Graph is a propagation graph. Edges point in the direction of
// information flow. Graphs built by the dataflow analyzer are acyclic
// (loops are analyzed as a single iteration, §5.2).
type Graph struct {
	Events []*Event
	succs  [][]int
	preds  [][]int
	// edgeArgs labels edges with the argument positions the flow enters
	// through (see args.go); unlabeled edges match any position.
	edgeArgs map[int64][]int
}

// New returns an empty propagation graph.
func New() *Graph { return &Graph{} }

// AddEvent appends an event, assigning and returning its ID.
func (g *Graph) AddEvent(kind EventKind, file string, pos pytoken.Pos, reps []string) *Event {
	e := &Event{
		ID: len(g.Events), Kind: kind, File: file, Pos: pos,
		Reps: reps, Roles: CandidateRoles(kind),
	}
	g.Events = append(g.Events, e)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return e
}

// AddEdge records information flow from src to dst. Self-loops and
// duplicate edges are dropped.
func (g *Graph) AddEdge(src, dst int) {
	if src == dst || src < 0 || dst < 0 || src >= len(g.Events) || dst >= len(g.Events) {
		return
	}
	for _, s := range g.succs[src] {
		if s == dst {
			return
		}
	}
	g.succs[src] = append(g.succs[src], dst)
	g.preds[dst] = append(g.preds[dst], src)
}

// Succs returns the IDs of events receiving flow from id.
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Preds returns the IDs of events flowing into id.
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// Union builds the global propagation graph of a dataset: the disjoint
// union of the per-program graphs (§4, "Learning over a Global Propagation
// Graph"). Event IDs are renumbered; inputs are not modified.
//
// Adjacency is bulk-copied: the inputs are well-formed graphs (edges
// deduplicated, no self-loops) and the union is disjoint, so the per-edge
// AddEdge duplicate scans are unnecessary. Event, successor, and
// predecessor slices are preallocated to their exact summed sizes, and
// predecessor lists are rebuilt in ascending-source order — the order the
// AddEdge-based union produced — so the result is byte-identical to it.
func Union(graphs ...*Graph) *Graph {
	totalEvents := 0
	for _, g := range graphs {
		totalEvents += len(g.Events)
	}
	out := &Graph{
		Events: make([]*Event, 0, totalEvents),
		succs:  make([][]int, totalEvents),
		preds:  make([][]int, totalEvents),
	}

	// Events and successor lists, then predecessor-list sizes.
	predLen := make([]int, totalEvents)
	for _, g := range graphs {
		base := len(out.Events)
		for _, e := range g.Events {
			ne := *e
			ne.ID = base + e.ID
			out.Events = append(out.Events, &ne)
		}
		for src, ss := range g.succs {
			if len(ss) == 0 {
				continue
			}
			shifted := make([]int, len(ss))
			for i, dst := range ss {
				shifted[i] = base + dst
				predLen[base+dst]++
			}
			out.succs[base+src] = shifted
		}
	}

	// Predecessor lists, exact-size, filled in ascending-source order.
	for id, n := range predLen {
		if n > 0 {
			out.preds[id] = make([]int, 0, n)
		}
	}
	base := 0
	for _, g := range graphs {
		for src, ss := range g.succs {
			for _, dst := range ss {
				out.preds[base+dst] = append(out.preds[base+dst], base+src)
			}
		}
		out.copyEdgeArgs(g, base)
		base += len(g.Events)
	}
	return out
}

// Collapse applies vertex contraction, merging all events that share the
// same most-specific representation into a single vertex (Fig. 7). The
// result is Merlin's collapsed propagation graph (§6.4); it is generally
// unsuitable for taint analysis but usable for specification learning.
// Events without representations are kept as-is.
func (g *Graph) Collapse() *Graph {
	out := New()
	classOf := make([]int, len(g.Events))
	byRep := make(map[string]int)
	for _, e := range g.Events {
		key := ""
		if len(e.Reps) > 0 {
			// Contract on the most specific representation, qualified by
			// kind so a read and a call never merge.
			key = fmt.Sprintf("%d|%s", e.Kind, e.Reps[0])
		} else {
			key = fmt.Sprintf("anon|%d", e.ID)
		}
		id, ok := byRep[key]
		if !ok {
			ne := *e
			ne.ID = len(out.Events)
			out.Events = append(out.Events, &ne)
			out.succs = append(out.succs, nil)
			out.preds = append(out.preds, nil)
			id = ne.ID
			byRep[key] = id
		} else {
			// Candidate roles of merged events accumulate.
			out.Events[id].Roles |= e.Roles
		}
		classOf[e.ID] = id
	}
	for src, ss := range g.succs {
		for _, dst := range ss {
			out.AddEdge(classOf[src], classOf[dst])
		}
	}
	out.copyEdgeArgsMapped(g, classOf)
	return out
}

// ForwardReachable returns the set of event IDs reachable from start by
// following edges forward, excluding start itself unless it lies on a cycle.
func (g *Graph) ForwardReachable(start int) []int {
	return g.reachable(start, g.succs)
}

// BackwardReachable returns the set of event IDs that can reach start.
func (g *Graph) BackwardReachable(start int) []int {
	return g.reachable(start, g.preds)
}

func (g *Graph) reachable(start int, adj [][]int) []int {
	seen := make(map[int]bool)
	queue := append([]int(nil), adj[start]...)
	var out []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
		queue = append(queue, adj[id]...)
	}
	sort.Ints(out)
	return out
}

// Stats summarizes a propagation graph for reporting (Table 1).
type Stats struct {
	Events      int
	Edges       int
	Candidates  int     // events with at least one representation
	AvgBackoff  float64 // average number of representations per candidate
	CallEvents  int
	ReadEvents  int
	ParamEvents int
}

// ComputeStats gathers summary statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{Events: len(g.Events), Edges: g.NumEdges()}
	totalReps := 0
	for _, e := range g.Events {
		switch e.Kind {
		case KindCall:
			st.CallEvents++
		case KindRead:
			st.ReadEvents++
		case KindParam:
			st.ParamEvents++
		}
		if len(e.Reps) > 0 {
			st.Candidates++
			totalReps += len(e.Reps)
		}
	}
	if st.Candidates > 0 {
		st.AvgBackoff = float64(totalReps) / float64(st.Candidates)
	}
	return st
}
