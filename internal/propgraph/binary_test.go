package propgraph

import (
	"bytes"
	"encoding/binary"
	"testing"

	"seldon/internal/pytoken"
)

// binaryTestGraph builds a graph exercising every encoded feature:
// multiple kinds, positions, backoff rep lists, role sets, edge
// insertion order, and argument labels (including the receiver/keyword
// sentinels).
func binaryTestGraph() *Graph {
	g := New()
	a := g.AddEvent(KindCall, "app.py", pytoken.Pos{Line: 3, Col: 4},
		[]string{"flask.request.args.get()", "request.args.get()", "args.get()"})
	b := g.AddEvent(KindRead, "app.py", pytoken.Pos{Line: 5, Col: 0},
		[]string{"flask.request.form"})
	c := g.AddEvent(KindParam, "app.py", pytoken.Pos{Line: 1, Col: 8}, []string{"handler:q"})
	d := g.AddEvent(KindCall, "app.py", pytoken.Pos{Line: 9, Col: 2}, []string{"os.system()"})
	_ = c
	// Deliberately non-ascending insertion order on d's predecessors.
	g.AddEdgeArg(b.ID, d.ID, 1)
	g.AddEdgeArg(a.ID, d.ID, 0)
	g.AddEdgeArg(a.ID, d.ID, ArgReceiver)
	g.AddEdge(c.ID, b.ID)
	g.Events[b.ID].Roles = SourceOnly
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	g := binaryTestGraph()
	enc := g.AppendBinary(nil)
	got, rest, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d unconsumed bytes", len(rest))
	}

	// The decoded graph must re-encode to the same bytes...
	if !bytes.Equal(got.AppendBinary(nil), enc) {
		t.Error("re-encode differs from original encoding")
	}
	// ...and agree with the JSON codec, which covers events, succ order,
	// and edge labels.
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("JSON of decoded graph differs:\n got %s\nwant %s", b.String(), a.String())
	}
	// Edge labels survive, sorted as AddEdgeArg keeps them.
	if args := got.EdgeArgs(0, 3); len(args) != 2 || args[0] != ArgReceiver || args[1] != 0 {
		t.Errorf("EdgeArgs(0,3) = %v", args)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	g := binaryTestGraph()
	first := g.AppendBinary(nil)
	for i := 0; i < 16; i++ {
		if !bytes.Equal(g.AppendBinary(nil), first) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}

func TestBinaryEmptyGraphAndRest(t *testing.T) {
	enc := New().AppendBinary(nil)
	trailer := []byte("tail")
	g, rest, err := DecodeBinary(append(enc, trailer...))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Events) != 0 || g.NumEdges() != 0 {
		t.Errorf("decoded empty graph has %d events, %d edges", len(g.Events), g.NumEdges())
	}
	if !bytes.Equal(rest, trailer) {
		t.Errorf("rest = %q, want %q", rest, trailer)
	}
}

func TestBinaryRejectsMalformedInput(t *testing.T) {
	enc := binaryTestGraph().AppendBinary(nil)
	cases := map[string][]byte{
		"empty":       {},
		"bad tag":     append([]byte{0x00}, enc[1:]...),
		"bad version": append([]byte{binaryTag, 99}, enc[2:]...),
		"truncated":   enc[:len(enc)/2],
		"giant event count": append([]byte{binaryTag, binaryVersion,
			0xff, 0xff, 0xff, 0xff, 0x0f}, enc[3:]...),
	}
	for name, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// Version-1 entries (pre-symbol-table layout) must be rejected outright —
// the fpcache turns that error into a miss and re-analyzes.
func TestBinaryRejectsVersion1(t *testing.T) {
	enc := binaryTestGraph().AppendBinary(nil)
	v1 := append([]byte{binaryTag, 1}, enc[2:]...)
	if _, _, err := DecodeBinary(v1); err == nil {
		t.Error("version-1 input accepted")
	}
}

// A symbol table with a duplicate string would silently shift every later
// symbol ID on decode; it must be treated as corruption.
func TestBinaryRejectsDuplicateSymbols(t *testing.T) {
	data := []byte{binaryTag, binaryVersion}
	data = binary.AppendUvarint(data, 2)
	data = appendString(data, "f()")
	data = appendString(data, "f()")
	data = binary.AppendUvarint(data, 0) // files
	data = binary.AppendUvarint(data, 0) // events
	data = binary.AppendUvarint(data, 0) // edge args
	if _, _, err := DecodeBinary(data); err == nil {
		t.Error("duplicate symbol table accepted")
	}
}

// TestBinarySharesStrings pins the v2 size win: a graph whose events
// repeat representations and file names must encode smaller than the sum
// of its per-occurrence strings.
func TestBinaryStringTableCompression(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.AddEvent(KindCall, "pkg/very/long/path/to/module.py",
			pytoken.Pos{Line: i + 1}, []string{"package.module.function()", "module.function()"})
	}
	enc := g.AppendBinary(nil)
	perOccurrence := 0
	for _, e := range g.Events {
		perOccurrence += len(e.File)
		for _, r := range e.Reps() {
			perOccurrence += len(r)
		}
	}
	if len(enc) >= perOccurrence {
		t.Errorf("encoding %dB, not smaller than %dB of per-occurrence strings",
			len(enc), perOccurrence)
	}
	got, _, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendBinary(nil), enc) {
		t.Error("round trip changed bytes")
	}
}
