package propgraph

import (
	"bytes"
	"strings"
	"testing"

	"seldon/internal/pytoken"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := New()
	a := g.AddEvent(KindCall, "a.py", pytoken.Pos{Line: 3, Col: 4}, []string{"f()", "m.f()"})
	b := g.AddEvent(KindRead, "a.py", pytoken.Pos{Line: 5}, []string{"x.y"})
	c := g.AddEvent(KindParam, "b.py", pytoken.Pos{Line: 1}, []string{"g(param p)"})
	g.AddEdge(a.ID, b.ID)
	g.AddEdgeArg(b.ID, c.ID, 0)
	g.AddEdgeArg(b.ID, c.ID, ArgReceiver)

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 3 {
		t.Fatalf("events = %d", len(got.Events))
	}
	for i, e := range g.Events {
		ge := got.Events[i]
		if ge.Kind != e.Kind || ge.File != e.File || ge.Pos != e.Pos ||
			ge.Roles != e.Roles || ge.NumReps() != e.NumReps() {
			t.Errorf("event %d mismatch: %+v vs %+v", i, ge, e)
		}
	}
	if got.NumEdges() != 2 {
		t.Errorf("edges = %d", got.NumEdges())
	}
	args := got.EdgeArgs(b.ID, c.ID)
	if len(args) != 2 || args[0] != ArgReceiver || args[1] != 0 {
		t.Errorf("edge args = %v", args)
	}
	if got.EdgeArgs(a.ID, b.ID) != nil {
		t.Error("unlabeled edge gained labels")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":1,"events":[{"kind":0}],"edges":[{"s":0,"d":7}]}`)); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Events) != 0 || g.NumEdges() != 0 {
		t.Errorf("non-empty decode: %d events", len(g.Events))
	}
}
