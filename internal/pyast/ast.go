// Package pyast defines the abstract syntax tree for the Python subset
// analyzed by Seldon.
//
// The node set mirrors CPython's ast module for the constructs the
// propagation-graph builder cares about: modules, function and class
// definitions (with decorators), assignments, control flow, imports, and
// the full expression grammar including calls, attribute and subscript
// access, comprehensions, and lambdas.
package pyast

import "seldon/internal/pytoken"

// Node is implemented by every AST node.
type Node interface {
	Pos() pytoken.Pos
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// ---------------------------------------------------------------------------
// Module

// Module is the root of a parsed file.
type Module struct {
	File string // file name as given to the parser
	Body []Stmt
}

func (m *Module) Pos() pytoken.Pos {
	if len(m.Body) > 0 {
		return m.Body[0].Pos()
	}
	return pytoken.Pos{Line: 1}
}

// ---------------------------------------------------------------------------
// Statements

// FunctionDef is a def statement (async or not).
type FunctionDef struct {
	DefPos     pytoken.Pos
	Name       string
	Params     []*Param
	Decorators []Expr
	Returns    Expr // annotation after ->, or nil
	Body       []Stmt
	Async      bool
}

// Param is a single formal parameter of a function or lambda.
type Param struct {
	NamePos    pytoken.Pos
	Name       string
	Annotation Expr // or nil
	Default    Expr // or nil
	Star       bool // *args
	DoubleStar bool // **kwargs
}

func (p *Param) Pos() pytoken.Pos { return p.NamePos }

// ClassDef is a class statement.
type ClassDef struct {
	ClassPos   pytoken.Pos
	Name       string
	Bases      []Expr // positional base classes
	Keywords   []*Keyword
	Decorators []Expr
	Body       []Stmt
}

// Return is a return statement.
type Return struct {
	ReturnPos pytoken.Pos
	Value     Expr // or nil
}

// Delete is a del statement.
type Delete struct {
	DelPos  pytoken.Pos
	Targets []Expr
}

// Assign is `targets = ... = value`. Chained assignments keep every target.
type Assign struct {
	Targets []Expr // at least one
	Value   Expr
}

// AugAssign is an augmented assignment such as `x += y`.
type AugAssign struct {
	Target Expr
	Op     pytoken.Kind // the augmented operator token, e.g. PLUSEQ
	Value  Expr
}

// AnnAssign is an annotated assignment such as `x: int = y`.
type AnnAssign struct {
	Target     Expr
	Annotation Expr
	Value      Expr // or nil
}

// For is a for loop (async or not).
type For struct {
	ForPos pytoken.Pos
	Target Expr
	Iter   Expr
	Body   []Stmt
	Else   []Stmt
	Async  bool
}

// While is a while loop.
type While struct {
	WhilePos pytoken.Pos
	Cond     Expr
	Body     []Stmt
	Else     []Stmt
}

// If is an if/elif/else chain; elif is represented as a nested If in Else.
type If struct {
	IfPos pytoken.Pos
	Cond  Expr
	Body  []Stmt
	Else  []Stmt
}

// With is a with statement (async or not).
type With struct {
	WithPos pytoken.Pos
	Items   []*WithItem
	Body    []Stmt
	Async   bool
}

// WithItem is one `ctx as var` clause of a with statement.
type WithItem struct {
	Context Expr
	Vars    Expr // or nil
}

// Raise is a raise statement.
type Raise struct {
	RaisePos pytoken.Pos
	Exc      Expr // or nil
	Cause    Expr // raise X from Cause, or nil
}

// Try is a try/except/else/finally statement.
type Try struct {
	TryPos   pytoken.Pos
	Body     []Stmt
	Handlers []*ExceptHandler
	Else     []Stmt
	Finally  []Stmt
}

// ExceptHandler is one except clause.
type ExceptHandler struct {
	ExceptPos pytoken.Pos
	Type      Expr   // or nil for bare except
	Name      string // `as name`, or ""
	Body      []Stmt
}

// Assert is an assert statement.
type Assert struct {
	AssertPos pytoken.Pos
	Cond      Expr
	Msg       Expr // or nil
}

// Import is `import a.b as c, d`.
type Import struct {
	ImportPos pytoken.Pos
	Names     []*Alias
}

// ImportFrom is `from mod import a as b, c` (Level counts leading dots).
type ImportFrom struct {
	FromPos pytoken.Pos
	Module  string // "" for `from . import x`
	Names   []*Alias
	Level   int
}

// Alias is one imported name with its optional rebinding.
type Alias struct {
	Name   string // dotted path, or "*"
	AsName string // or ""
}

// Global is a global declaration.
type Global struct {
	GlobalPos pytoken.Pos
	Names     []string
}

// Nonlocal is a nonlocal declaration.
type Nonlocal struct {
	NonlocalPos pytoken.Pos
	Names       []string
}

// ExprStmt is an expression evaluated for effect (e.g. a bare call).
type ExprStmt struct {
	Value Expr
}

// Pass is a pass statement.
type Pass struct{ PassPos pytoken.Pos }

// Break is a break statement.
type Break struct{ BreakPos pytoken.Pos }

// Continue is a continue statement.
type Continue struct{ ContinuePos pytoken.Pos }

func (s *FunctionDef) Pos() pytoken.Pos { return s.DefPos }
func (s *ClassDef) Pos() pytoken.Pos    { return s.ClassPos }
func (s *Return) Pos() pytoken.Pos      { return s.ReturnPos }
func (s *Delete) Pos() pytoken.Pos      { return s.DelPos }
func (s *Assign) Pos() pytoken.Pos      { return s.Targets[0].Pos() }
func (s *AugAssign) Pos() pytoken.Pos   { return s.Target.Pos() }
func (s *AnnAssign) Pos() pytoken.Pos   { return s.Target.Pos() }
func (s *For) Pos() pytoken.Pos         { return s.ForPos }
func (s *While) Pos() pytoken.Pos       { return s.WhilePos }
func (s *If) Pos() pytoken.Pos          { return s.IfPos }
func (s *With) Pos() pytoken.Pos        { return s.WithPos }
func (s *Raise) Pos() pytoken.Pos       { return s.RaisePos }
func (s *Try) Pos() pytoken.Pos         { return s.TryPos }
func (s *Assert) Pos() pytoken.Pos      { return s.AssertPos }
func (s *Import) Pos() pytoken.Pos      { return s.ImportPos }
func (s *ImportFrom) Pos() pytoken.Pos  { return s.FromPos }
func (s *Global) Pos() pytoken.Pos      { return s.GlobalPos }
func (s *Nonlocal) Pos() pytoken.Pos    { return s.NonlocalPos }
func (s *ExprStmt) Pos() pytoken.Pos    { return s.Value.Pos() }
func (s *Pass) Pos() pytoken.Pos        { return s.PassPos }
func (s *Break) Pos() pytoken.Pos       { return s.BreakPos }
func (s *Continue) Pos() pytoken.Pos    { return s.ContinuePos }

func (*FunctionDef) stmtNode() {}
func (*ClassDef) stmtNode()    {}
func (*Return) stmtNode()      {}
func (*Delete) stmtNode()      {}
func (*Assign) stmtNode()      {}
func (*AugAssign) stmtNode()   {}
func (*AnnAssign) stmtNode()   {}
func (*For) stmtNode()         {}
func (*While) stmtNode()       {}
func (*If) stmtNode()          {}
func (*With) stmtNode()        {}
func (*Raise) stmtNode()       {}
func (*Try) stmtNode()         {}
func (*Assert) stmtNode()      {}
func (*Import) stmtNode()      {}
func (*ImportFrom) stmtNode()  {}
func (*Global) stmtNode()      {}
func (*Nonlocal) stmtNode()    {}
func (*ExprStmt) stmtNode()    {}
func (*Pass) stmtNode()        {}
func (*Break) stmtNode()       {}
func (*Continue) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions

// Name is an identifier reference.
type Name struct {
	NamePos pytoken.Pos
	Ident   string
}

// Num is a numeric literal (verbatim text).
type Num struct {
	NumPos pytoken.Pos
	Lit    string
}

// Str is a string literal; adjacent literals are concatenated by the parser.
type Str struct {
	StrPos pytoken.Pos
	Lit    string // verbatim, including prefix and quotes of the first part
}

// JoinedStr is an f-string with interpolated expressions: information
// flows from every Value into the resulting string.
type JoinedStr struct {
	StrPos pytoken.Pos
	Lit    string // the verbatim literal
	Values []Expr // the parsed {…} interpolations, in order
}

// NameConst is True, False, or None.
type NameConst struct {
	ConstPos pytoken.Pos
	Value    string // "True" | "False" | "None"
}

// EllipsisLit is the `...` literal.
type EllipsisLit struct{ DotsPos pytoken.Pos }

// Attribute is `value.attr`.
type Attribute struct {
	Value   Expr
	Attr    string
	AttrPos pytoken.Pos
}

// Subscript is `value[index]`.
type Subscript struct {
	Value Expr
	Index Expr // a Tuple for multi-dim, a Slice for slicing
}

// Slice is `lo:hi:step` inside a subscript. Any field may be nil.
type Slice struct {
	ColonPos     pytoken.Pos
	Lo, Hi, Step Expr
}

// Call is a function or method invocation.
type Call struct {
	Func     Expr
	Args     []Expr
	Keywords []*Keyword
}

// Keyword is a `name=value` (or `**value` when Name is "") call argument.
type Keyword struct {
	NamePos pytoken.Pos
	Name    string // "" means **value
	Value   Expr
}

// BinOp is a binary arithmetic/bitwise operation.
type BinOp struct {
	Left  Expr
	Op    pytoken.Kind
	Right Expr
}

// BoolOp is an `and`/`or` chain with two or more operands.
type BoolOp struct {
	Op     pytoken.Kind // KwAnd or KwOr
	Values []Expr
}

// UnaryOp is a unary operation (-x, +x, ~x, not x).
type UnaryOp struct {
	OpPos   pytoken.Pos
	Op      pytoken.Kind
	Operand Expr
}

// Compare is a comparison chain: Left Op0 C0 Op1 C1 ...
type Compare struct {
	Left        Expr
	Ops         []CompareOp
	Comparators []Expr
}

// CompareOp is a comparison operator, including `not in` and `is not`.
type CompareOp struct {
	Kind pytoken.Kind // LT, GT, ..., KwIn, KwIs
	Not  bool         // true for `not in` / `is not`
}

// IfExp is the conditional expression `a if cond else b`.
type IfExp struct {
	Cond, Then, Else Expr
}

// Lambda is a lambda expression.
type Lambda struct {
	LambdaPos pytoken.Pos
	Params    []*Param
	Body      Expr
}

// Tuple is a (possibly parenthesized) tuple display.
type Tuple struct {
	TuplePos pytoken.Pos
	Elts     []Expr
}

// List is a list display.
type List struct {
	ListPos pytoken.Pos
	Elts    []Expr
}

// Set is a set display.
type Set struct {
	SetPos pytoken.Pos
	Elts   []Expr
}

// Dict is a dict display; a nil key marks a `**mapping` expansion.
type Dict struct {
	DictPos pytoken.Pos
	Keys    []Expr
	Values  []Expr
}

// Comp is a comprehension (list/set/dict/generator).
type Comp struct {
	CompPos pytoken.Pos
	Kind    CompKind
	Elt     Expr // element, or key for dict comps
	Value   Expr // value for dict comps, nil otherwise
	Clauses []*CompClause
}

// CompKind distinguishes the comprehension forms.
type CompKind int

// Comprehension kinds.
const (
	ListComp CompKind = iota
	SetComp
	DictComp
	GeneratorExp
)

// CompClause is one `for target in iter [if cond]*` clause.
type CompClause struct {
	Target Expr
	Iter   Expr
	Ifs    []Expr
	Async  bool
}

// Starred is `*value` in a call or assignment context.
type Starred struct {
	StarPos pytoken.Pos
	Value   Expr
}

// Await is an `await value` expression.
type Await struct {
	AwaitPos pytoken.Pos
	Value    Expr
}

// Yield is a `yield [value]` or `yield from value` expression.
type Yield struct {
	YieldPos pytoken.Pos
	Value    Expr // or nil
	From     bool
}

// NamedExpr is the walrus `target := value`.
type NamedExpr struct {
	Target Expr
	Value  Expr
}

func (e *Name) Pos() pytoken.Pos        { return e.NamePos }
func (e *Num) Pos() pytoken.Pos         { return e.NumPos }
func (e *Str) Pos() pytoken.Pos         { return e.StrPos }
func (e *JoinedStr) Pos() pytoken.Pos   { return e.StrPos }
func (e *NameConst) Pos() pytoken.Pos   { return e.ConstPos }
func (e *EllipsisLit) Pos() pytoken.Pos { return e.DotsPos }
func (e *Attribute) Pos() pytoken.Pos   { return e.Value.Pos() }
func (e *Subscript) Pos() pytoken.Pos   { return e.Value.Pos() }
func (e *Slice) Pos() pytoken.Pos       { return e.ColonPos }
func (e *Call) Pos() pytoken.Pos        { return e.Func.Pos() }
func (e *BinOp) Pos() pytoken.Pos       { return e.Left.Pos() }
func (e *BoolOp) Pos() pytoken.Pos      { return e.Values[0].Pos() }
func (e *UnaryOp) Pos() pytoken.Pos     { return e.OpPos }
func (e *Compare) Pos() pytoken.Pos     { return e.Left.Pos() }
func (e *IfExp) Pos() pytoken.Pos       { return e.Then.Pos() }
func (e *Lambda) Pos() pytoken.Pos      { return e.LambdaPos }
func (e *Tuple) Pos() pytoken.Pos       { return e.TuplePos }
func (e *List) Pos() pytoken.Pos        { return e.ListPos }
func (e *Set) Pos() pytoken.Pos         { return e.SetPos }
func (e *Dict) Pos() pytoken.Pos        { return e.DictPos }
func (e *Comp) Pos() pytoken.Pos        { return e.CompPos }
func (e *Starred) Pos() pytoken.Pos     { return e.StarPos }
func (e *Await) Pos() pytoken.Pos       { return e.AwaitPos }
func (e *Yield) Pos() pytoken.Pos       { return e.YieldPos }
func (e *NamedExpr) Pos() pytoken.Pos   { return e.Target.Pos() }

func (*Name) exprNode()        {}
func (*Num) exprNode()         {}
func (*Str) exprNode()         {}
func (*JoinedStr) exprNode()   {}
func (*NameConst) exprNode()   {}
func (*EllipsisLit) exprNode() {}
func (*Attribute) exprNode()   {}
func (*Subscript) exprNode()   {}
func (*Slice) exprNode()       {}
func (*Call) exprNode()        {}
func (*BinOp) exprNode()       {}
func (*BoolOp) exprNode()      {}
func (*UnaryOp) exprNode()     {}
func (*Compare) exprNode()     {}
func (*IfExp) exprNode()       {}
func (*Lambda) exprNode()      {}
func (*Tuple) exprNode()       {}
func (*List) exprNode()        {}
func (*Set) exprNode()         {}
func (*Dict) exprNode()        {}
func (*Comp) exprNode()        {}
func (*Starred) exprNode()     {}
func (*Await) exprNode()       {}
func (*Yield) exprNode()       {}
func (*NamedExpr) exprNode()   {}
