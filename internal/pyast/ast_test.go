package pyast

import (
	"testing"

	"seldon/internal/pytoken"
)

func name(s string) *Name { return &Name{Ident: s, NamePos: pytoken.Pos{Line: 1}} }

func TestUnparseBasics(t *testing.T) {
	cases := []struct {
		expr Expr
		want string
	}{
		{name("x"), "x"},
		{&Num{Lit: "42"}, "42"},
		{&Str{Lit: "'s'"}, "'s'"},
		{&NameConst{Value: "None"}, "None"},
		{&EllipsisLit{}, "..."},
		{&Attribute{Value: name("a"), Attr: "b"}, "a.b"},
		{&Subscript{Value: name("d"), Index: &Str{Lit: "'k'"}}, "d['k']"},
		{&Call{Func: name("f"), Args: []Expr{name("a")}}, "f(a)"},
		{&Call{Func: name("f"), Keywords: []*Keyword{{Name: "k", Value: name("v")}}}, "f(k=v)"},
		{&Call{Func: name("f"), Keywords: []*Keyword{{Value: name("m")}}}, "f(**m)"},
		{&BinOp{Left: name("a"), Op: pytoken.PLUS, Right: name("b")}, "a + b"},
		{&UnaryOp{Op: pytoken.MINUS, Operand: name("x")}, "-x"},
		{&UnaryOp{Op: pytoken.KwNot, Operand: name("x")}, "not x"},
		{&Tuple{}, "()"},
		{&Tuple{Elts: []Expr{name("a")}}, "(a,)"},
		{&List{Elts: []Expr{name("a"), name("b")}}, "[a, b]"},
		{&Set{Elts: []Expr{name("a")}}, "{a}"},
		{&Dict{}, "{}"},
		{&Dict{Keys: []Expr{nil}, Values: []Expr{name("m")}}, "{**m}"},
		{&Starred{Value: name("a")}, "*a"},
		{&Await{Value: name("f")}, "await f"},
		{&Yield{}, "yield"},
		{&Yield{Value: name("x"), From: true}, "yield from x"},
		{&NamedExpr{Target: name("n"), Value: name("v")}, "(n := v)"},
		{&Slice{Lo: name("a"), Hi: name("b"), Step: name("c")}, "a:b:c"},
		{&IfExp{Cond: name("c"), Then: name("a"), Else: name("b")}, "a if c else b"},
		{&Lambda{Params: []*Param{{Name: "x"}}, Body: name("x")}, "lambda x: x"},
		{&Compare{Left: name("a"), Ops: []CompareOp{{Kind: pytoken.KwIn, Not: true}},
			Comparators: []Expr{name("b")}}, "a not in b"},
		{&Compare{Left: name("a"), Ops: []CompareOp{{Kind: pytoken.KwIs, Not: true}},
			Comparators: []Expr{name("b")}}, "a is not b"},
		{&BoolOp{Op: pytoken.KwOr, Values: []Expr{name("a"), name("b")}}, "a or b"},
	}
	for _, c := range cases {
		if got := Unparse(c.expr); got != c.want {
			t.Errorf("Unparse = %q, want %q", got, c.want)
		}
	}
}

func TestUnparseNilSafe(t *testing.T) {
	if got := Unparse(nil); got != "" {
		t.Errorf("Unparse(nil) = %q", got)
	}
}

func TestUnparseComprehensions(t *testing.T) {
	comp := &Comp{
		Kind: ListComp,
		Elt:  &Call{Func: name("f"), Args: []Expr{name("x")}},
		Clauses: []*CompClause{{
			Target: name("x"),
			Iter:   name("xs"),
			Ifs:    []Expr{name("p")},
		}},
	}
	if got := Unparse(comp); got != "[f(x) for x in xs if p]" {
		t.Errorf("list comp = %q", got)
	}
	dcomp := &Comp{Kind: DictComp, Elt: name("k"), Value: name("v"),
		Clauses: []*CompClause{{Target: name("k"), Iter: name("m")}}}
	if got := Unparse(dcomp); got != "{k: v for k in m}" {
		t.Errorf("dict comp = %q", got)
	}
	gen := &Comp{Kind: GeneratorExp, Elt: name("x"),
		Clauses: []*CompClause{{Target: name("x"), Iter: name("xs")}}}
	if got := Unparse(gen); got != "(x for x in xs)" {
		t.Errorf("generator = %q", got)
	}
}

func TestInspectVisitsAllNodes(t *testing.T) {
	mod := &Module{File: "t.py", Body: []Stmt{
		&FunctionDef{
			Name:   "f",
			Params: []*Param{{Name: "a", Default: name("d")}},
			Body: []Stmt{
				&If{
					Cond: &Compare{Left: name("a"), Ops: []CompareOp{{Kind: pytoken.LT}},
						Comparators: []Expr{&Num{Lit: "1"}}},
					Body: []Stmt{&Return{Value: &Call{Func: name("g"), Args: []Expr{name("a")}}}},
					Else: []Stmt{&ExprStmt{Value: &Yield{Value: name("a")}}},
				},
			},
		},
		&ClassDef{Name: "C", Bases: []Expr{name("B")},
			Body: []Stmt{&Pass{}}},
		&Assign{Targets: []Expr{name("x")}, Value: &Dict{
			Keys: []Expr{&Str{Lit: "'k'"}}, Values: []Expr{name("v")}}},
		&For{Target: name("i"), Iter: name("xs"),
			Body: []Stmt{&AugAssign{Target: name("s"), Op: pytoken.PLUSEQ, Value: name("i")}}},
		&Try{Body: []Stmt{&Raise{Exc: name("E")}},
			Handlers: []*ExceptHandler{{Type: name("E"), Name: "e",
				Body: []Stmt{&Pass{}}}},
			Finally: []Stmt{&Delete{Targets: []Expr{name("x")}}}},
		&With{Items: []*WithItem{{Context: &Call{Func: name("open")}, Vars: name("fh")}},
			Body: []Stmt{&Global{Names: []string{"g"}}}},
		&Import{Names: []*Alias{{Name: "os"}}},
		&While{Cond: name("c"), Body: []Stmt{&Break{}}, Else: []Stmt{&Continue{}}},
	}}

	counts := map[string]int{}
	Inspect(mod, func(n Node) bool {
		switch n.(type) {
		case *Name:
			counts["name"]++
		case *Call:
			counts["call"]++
		case *FunctionDef:
			counts["func"]++
		case *ClassDef:
			counts["class"]++
		case *Dict:
			counts["dict"]++
		}
		return true
	})
	if counts["func"] != 1 || counts["class"] != 1 || counts["dict"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if counts["call"] != 2 {
		t.Errorf("calls = %d, want 2", counts["call"])
	}
	if counts["name"] < 12 {
		t.Errorf("names = %d, want >= 12", counts["name"])
	}
}

func TestInspectPruning(t *testing.T) {
	mod := &Module{Body: []Stmt{
		&FunctionDef{Name: "f", Body: []Stmt{
			&ExprStmt{Value: &Call{Func: name("inner")}},
		}},
		&ExprStmt{Value: &Call{Func: name("outer")}},
	}}
	calls := 0
	Inspect(mod, func(n Node) bool {
		if _, ok := n.(*FunctionDef); ok {
			return false // skip function bodies
		}
		if _, ok := n.(*Call); ok {
			calls++
		}
		return true
	})
	if calls != 1 {
		t.Errorf("calls seen = %d, want 1 (inner pruned)", calls)
	}
}

func TestPositions(t *testing.T) {
	p := pytoken.Pos{Line: 3, Col: 7}
	nodes := []Node{
		&FunctionDef{DefPos: p},
		&ClassDef{ClassPos: p},
		&Return{ReturnPos: p},
		&If{IfPos: p},
		&While{WhilePos: p},
		&For{ForPos: p},
		&With{WithPos: p},
		&Try{TryPos: p},
		&Import{ImportPos: p},
		&Name{NamePos: p},
		&Num{NumPos: p},
		&Str{StrPos: p},
		&Lambda{LambdaPos: p},
		&Tuple{TuplePos: p},
		&Pass{PassPos: p},
	}
	for _, n := range nodes {
		if n.Pos() != p {
			t.Errorf("%T.Pos() = %v, want %v", n, n.Pos(), p)
		}
	}
	// Derived positions.
	attr := &Attribute{Value: &Name{NamePos: p, Ident: "a"}, Attr: "b"}
	if attr.Pos() != p {
		t.Errorf("attribute pos = %v", attr.Pos())
	}
	empty := &Module{}
	if empty.Pos().Line != 1 {
		t.Errorf("empty module pos = %v", empty.Pos())
	}
}

func TestUnparseParenthesization(t *testing.T) {
	// Compound subexpressions get canonical parentheses.
	inner := &BinOp{Left: name("a"), Op: pytoken.PLUS, Right: name("b")}
	cases := []struct {
		expr Expr
		want string
	}{
		{&BinOp{Left: inner, Op: pytoken.STAR, Right: name("c")}, "(a + b) * c"},
		{&UnaryOp{Op: pytoken.MINUS, Operand: inner}, "-(a + b)"},
		{&Compare{Left: inner, Ops: []CompareOp{{Kind: pytoken.LT}},
			Comparators: []Expr{name("c")}}, "(a + b) < c"},
		{&Await{Value: inner}, "await (a + b)"},
		{&BoolOp{Op: pytoken.KwAnd, Values: []Expr{inner, name("c")}}, "(a + b) and c"},
	}
	for _, c := range cases {
		if got := Unparse(c.expr); got != c.want {
			t.Errorf("Unparse = %q, want %q", got, c.want)
		}
	}
}

func TestUnparseSetCompAndGenerators(t *testing.T) {
	sc := &Comp{Kind: SetComp, Elt: name("x"),
		Clauses: []*CompClause{{Target: name("x"), Iter: name("xs")}}}
	if got := Unparse(sc); got != "{x for x in xs}" {
		t.Errorf("set comp = %q", got)
	}
}

func TestUnparseParamForms(t *testing.T) {
	lam := &Lambda{Params: []*Param{
		{Name: "a", Default: name("d")},
		{Name: "args", Star: true},
		{Name: "kw", DoubleStar: true},
	}, Body: name("a")}
	if got := Unparse(lam); got != "lambda a=d, *args, **kw: a" {
		t.Errorf("lambda = %q", got)
	}
}

func TestUnparseSubscriptSliceForms(t *testing.T) {
	sl := &Subscript{Value: name("xs"), Index: &Slice{Lo: nil, Hi: name("n")}}
	if got := Unparse(sl); got != "xs[:n]" {
		t.Errorf("slice = %q", got)
	}
	tup := &Subscript{Value: name("m"), Index: &Tuple{Elts: []Expr{name("i"), name("j")}}}
	if got := Unparse(tup); got != "m[(i, j)]" {
		t.Errorf("tuple index = %q", got)
	}
}

func TestUnparseJoinedStr(t *testing.T) {
	js := &JoinedStr{Lit: `f"{x}"`, Values: []Expr{name("x")}}
	if got := Unparse(js); got != `f"{x}"` {
		t.Errorf("joined str = %q", got)
	}
}

func TestMorePositions(t *testing.T) {
	p := pytoken.Pos{Line: 9, Col: 1}
	nodes := []Node{
		&Delete{DelPos: p},
		&Raise{RaisePos: p},
		&Assert{AssertPos: p},
		&ImportFrom{FromPos: p},
		&Global{GlobalPos: p},
		&Nonlocal{NonlocalPos: p},
		&Break{BreakPos: p},
		&Continue{ContinuePos: p},
		&NameConst{ConstPos: p},
		&EllipsisLit{DotsPos: p},
		&Set{SetPos: p},
		&List{ListPos: p},
		&Dict{DictPos: p},
		&Comp{CompPos: p},
		&Starred{StarPos: p},
		&Await{AwaitPos: p},
		&Yield{YieldPos: p},
		&UnaryOp{OpPos: p},
		&Slice{ColonPos: p},
		&JoinedStr{StrPos: p},
		&Param{NamePos: p},
	}
	for _, n := range nodes {
		if n.Pos() != p {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
	// Derived positions.
	if (&Assign{Targets: []Expr{&Name{NamePos: p}}}).Pos() != p {
		t.Error("assign pos")
	}
	if (&AugAssign{Target: &Name{NamePos: p}}).Pos() != p {
		t.Error("augassign pos")
	}
	if (&AnnAssign{Target: &Name{NamePos: p}}).Pos() != p {
		t.Error("annassign pos")
	}
	if (&ExprStmt{Value: &Name{NamePos: p}}).Pos() != p {
		t.Error("exprstmt pos")
	}
	if (&Return{ReturnPos: p}).Pos() != p {
		t.Error("return pos")
	}
	if (&Subscript{Value: &Name{NamePos: p}}).Pos() != p {
		t.Error("subscript pos")
	}
	if (&Call{Func: &Name{NamePos: p}}).Pos() != p {
		t.Error("call pos")
	}
	if (&BinOp{Left: &Name{NamePos: p}}).Pos() != p {
		t.Error("binop pos")
	}
	if (&BoolOp{Values: []Expr{&Name{NamePos: p}}}).Pos() != p {
		t.Error("boolop pos")
	}
	if (&Compare{Left: &Name{NamePos: p}}).Pos() != p {
		t.Error("compare pos")
	}
	if (&IfExp{Then: &Name{NamePos: p}}).Pos() != p {
		t.Error("ifexp pos")
	}
	if (&NamedExpr{Target: &Name{NamePos: p}}).Pos() != p {
		t.Error("namedexpr pos")
	}
}
