package pyast

// Inspect traverses the AST rooted at n in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
// Statement lists inside Module are traversed via their parent nodes, so
// callers normally start from a *Module.
func Inspect(n Node, f func(Node) bool) {
	if n == nil {
		return
	}
	if !f(n) {
		return
	}
	switch x := n.(type) {
	case *Module:
		inspectStmts(x.Body, f)

	case *FunctionDef:
		inspectExprs(x.Decorators, f)
		for _, p := range x.Params {
			Inspect(p, f)
		}
		Inspect(x.Returns, f)
		inspectStmts(x.Body, f)
	case *Param:
		Inspect(x.Annotation, f)
		Inspect(x.Default, f)
	case *ClassDef:
		inspectExprs(x.Decorators, f)
		inspectExprs(x.Bases, f)
		for _, kw := range x.Keywords {
			Inspect(kw.Value, f)
		}
		inspectStmts(x.Body, f)
	case *Return:
		Inspect(x.Value, f)
	case *Delete:
		inspectExprs(x.Targets, f)
	case *Assign:
		inspectExprs(x.Targets, f)
		Inspect(x.Value, f)
	case *AugAssign:
		Inspect(x.Target, f)
		Inspect(x.Value, f)
	case *AnnAssign:
		Inspect(x.Target, f)
		Inspect(x.Annotation, f)
		Inspect(x.Value, f)
	case *For:
		Inspect(x.Target, f)
		Inspect(x.Iter, f)
		inspectStmts(x.Body, f)
		inspectStmts(x.Else, f)
	case *While:
		Inspect(x.Cond, f)
		inspectStmts(x.Body, f)
		inspectStmts(x.Else, f)
	case *If:
		Inspect(x.Cond, f)
		inspectStmts(x.Body, f)
		inspectStmts(x.Else, f)
	case *With:
		for _, it := range x.Items {
			Inspect(it.Context, f)
			Inspect(it.Vars, f)
		}
		inspectStmts(x.Body, f)
	case *Raise:
		Inspect(x.Exc, f)
		Inspect(x.Cause, f)
	case *Try:
		inspectStmts(x.Body, f)
		for _, h := range x.Handlers {
			Inspect(h.Type, f)
			inspectStmts(h.Body, f)
		}
		inspectStmts(x.Else, f)
		inspectStmts(x.Finally, f)
	case *Assert:
		Inspect(x.Cond, f)
		Inspect(x.Msg, f)
	case *ExprStmt:
		Inspect(x.Value, f)

	case *JoinedStr:
		inspectExprs(x.Values, f)
	case *Attribute:
		Inspect(x.Value, f)
	case *Subscript:
		Inspect(x.Value, f)
		Inspect(x.Index, f)
	case *Slice:
		Inspect(x.Lo, f)
		Inspect(x.Hi, f)
		Inspect(x.Step, f)
	case *Call:
		Inspect(x.Func, f)
		inspectExprs(x.Args, f)
		for _, kw := range x.Keywords {
			Inspect(kw.Value, f)
		}
	case *BinOp:
		Inspect(x.Left, f)
		Inspect(x.Right, f)
	case *BoolOp:
		inspectExprs(x.Values, f)
	case *UnaryOp:
		Inspect(x.Operand, f)
	case *Compare:
		Inspect(x.Left, f)
		inspectExprs(x.Comparators, f)
	case *IfExp:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *Lambda:
		for _, p := range x.Params {
			Inspect(p, f)
		}
		Inspect(x.Body, f)
	case *Tuple:
		inspectExprs(x.Elts, f)
	case *List:
		inspectExprs(x.Elts, f)
	case *Set:
		inspectExprs(x.Elts, f)
	case *Dict:
		for i := range x.Keys {
			Inspect(x.Keys[i], f)
			Inspect(x.Values[i], f)
		}
	case *Comp:
		Inspect(x.Elt, f)
		Inspect(x.Value, f)
		for _, c := range x.Clauses {
			Inspect(c.Target, f)
			Inspect(c.Iter, f)
			inspectExprs(c.Ifs, f)
		}
	case *Starred:
		Inspect(x.Value, f)
	case *Await:
		Inspect(x.Value, f)
	case *Yield:
		Inspect(x.Value, f)
	case *NamedExpr:
		Inspect(x.Target, f)
		Inspect(x.Value, f)
	}
}

func inspectStmts(ss []Stmt, f func(Node) bool) {
	for _, s := range ss {
		Inspect(s, f)
	}
}

func inspectExprs(es []Expr, f func(Node) bool) {
	for _, e := range es {
		Inspect(e, f)
	}
}
