package pyast

import (
	"fmt"
	"strings"

	"seldon/internal/pytoken"
)

// Unparse renders an expression back to compact Python-like source text.
// It is used in tests, in diagnostics, and by the propagation-graph builder
// to describe event targets. The output is canonical (minimal parentheses,
// single spaces around binary operators) rather than a byte-exact copy of
// the original source.
func Unparse(e Expr) string {
	var b strings.Builder
	unparse(&b, e)
	return b.String()
}

func unparse(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Name:
		b.WriteString(x.Ident)
	case *Num:
		b.WriteString(x.Lit)
	case *Str:
		b.WriteString(x.Lit)
	case *JoinedStr:
		b.WriteString(x.Lit)
	case *NameConst:
		b.WriteString(x.Value)
	case *EllipsisLit:
		b.WriteString("...")
	case *Attribute:
		unparse(b, x.Value)
		b.WriteByte('.')
		b.WriteString(x.Attr)
	case *Subscript:
		unparse(b, x.Value)
		b.WriteByte('[')
		unparse(b, x.Index)
		b.WriteByte(']')
	case *Slice:
		unparse(b, x.Lo)
		b.WriteByte(':')
		unparse(b, x.Hi)
		if x.Step != nil {
			b.WriteByte(':')
			unparse(b, x.Step)
		}
	case *Call:
		unparse(b, x.Func)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			unparse(b, a)
		}
		for i, kw := range x.Keywords {
			if i > 0 || len(x.Args) > 0 {
				b.WriteString(", ")
			}
			if kw.Name == "" {
				b.WriteString("**")
			} else {
				b.WriteString(kw.Name)
				b.WriteByte('=')
			}
			unparse(b, kw.Value)
		}
		b.WriteByte(')')
	case *BinOp:
		maybeParen(b, x.Left)
		fmt.Fprintf(b, " %s ", x.Op)
		maybeParen(b, x.Right)
	case *BoolOp:
		for i, v := range x.Values {
			if i > 0 {
				fmt.Fprintf(b, " %s ", x.Op)
			}
			maybeParen(b, v)
		}
	case *UnaryOp:
		if x.Op == pytoken.KwNot {
			b.WriteString("not ")
		} else {
			fmt.Fprintf(b, "%s", x.Op)
		}
		maybeParen(b, x.Operand)
	case *Compare:
		maybeParen(b, x.Left)
		for i, op := range x.Ops {
			b.WriteByte(' ')
			switch {
			case op.Kind == pytoken.KwIn && op.Not:
				b.WriteString("not in")
			case op.Kind == pytoken.KwIs && op.Not:
				b.WriteString("is not")
			default:
				fmt.Fprintf(b, "%s", op.Kind)
			}
			b.WriteByte(' ')
			maybeParen(b, x.Comparators[i])
		}
	case *IfExp:
		maybeParen(b, x.Then)
		b.WriteString(" if ")
		maybeParen(b, x.Cond)
		b.WriteString(" else ")
		maybeParen(b, x.Else)
	case *Lambda:
		b.WriteString("lambda")
		for i, p := range x.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte(' ')
			writeParam(b, p)
		}
		b.WriteString(": ")
		unparse(b, x.Body)
	case *Tuple:
		b.WriteByte('(')
		for i, el := range x.Elts {
			if i > 0 {
				b.WriteString(", ")
			}
			unparse(b, el)
		}
		if len(x.Elts) == 1 {
			b.WriteByte(',')
		}
		b.WriteByte(')')
	case *List:
		b.WriteByte('[')
		writeList(b, x.Elts)
		b.WriteByte(']')
	case *Set:
		b.WriteByte('{')
		writeList(b, x.Elts)
		b.WriteByte('}')
	case *Dict:
		b.WriteByte('{')
		for i := range x.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			if x.Keys[i] == nil {
				b.WriteString("**")
				unparse(b, x.Values[i])
				continue
			}
			unparse(b, x.Keys[i])
			b.WriteString(": ")
			unparse(b, x.Values[i])
		}
		b.WriteByte('}')
	case *Comp:
		open, close := compBrackets(x.Kind)
		b.WriteString(open)
		unparse(b, x.Elt)
		if x.Kind == DictComp {
			b.WriteString(": ")
			unparse(b, x.Value)
		}
		for _, c := range x.Clauses {
			b.WriteString(" for ")
			unparse(b, c.Target)
			b.WriteString(" in ")
			maybeParen(b, c.Iter)
			for _, cond := range c.Ifs {
				b.WriteString(" if ")
				maybeParen(b, cond)
			}
		}
		b.WriteString(close)
	case *Starred:
		b.WriteByte('*')
		unparse(b, x.Value)
	case *Await:
		b.WriteString("await ")
		maybeParen(b, x.Value)
	case *Yield:
		b.WriteString("yield")
		if x.From {
			b.WriteString(" from")
		}
		if x.Value != nil {
			b.WriteByte(' ')
			unparse(b, x.Value)
		}
	case *NamedExpr:
		b.WriteByte('(')
		unparse(b, x.Target)
		b.WriteString(" := ")
		unparse(b, x.Value)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

func compBrackets(k CompKind) (string, string) {
	switch k {
	case ListComp:
		return "[", "]"
	case SetComp, DictComp:
		return "{", "}"
	default:
		return "(", ")"
	}
}

func writeList(b *strings.Builder, es []Expr) {
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		unparse(b, e)
	}
}

func writeParam(b *strings.Builder, p *Param) {
	if p.Star {
		b.WriteByte('*')
	}
	if p.DoubleStar {
		b.WriteString("**")
	}
	b.WriteString(p.Name)
	if p.Default != nil {
		b.WriteByte('=')
		unparse(b, p.Default)
	}
}

// maybeParen parenthesizes compound subexpressions so the canonical output
// is unambiguous without tracking precedence.
func maybeParen(b *strings.Builder, e Expr) {
	switch e.(type) {
	case *BinOp, *BoolOp, *Compare, *IfExp, *Lambda, *UnaryOp, *Yield:
		b.WriteByte('(')
		unparse(b, e)
		b.WriteByte(')')
	default:
		unparse(b, e)
	}
}
