// Package pyparse implements a recursive-descent parser for the Python
// subset Seldon analyzes.
//
// The parser consumes the token stream produced by pytoken and builds a
// pyast.Module. It covers the statement and expression grammar needed for
// real-world web-application code: function/class definitions with
// decorators, the full assignment family, control flow, imports,
// comprehensions, lambdas, conditional expressions, and chained
// comparisons. Errors are accumulated; within a suite the parser resyncs at
// statement boundaries so a single bad statement does not abort the file.
package pyparse

import (
	"fmt"
	"strings"

	"seldon/internal/pyast"
	"seldon/internal/pytoken"
)

// ParseError describes a syntax error with its source position.
type ParseError struct {
	File string
	Pos  pytoken.Pos
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// bailout is panicked with internally to unwind to the statement resync
// point; it never escapes the package.
type bailout struct{}

type parser struct {
	file string
	toks []pytoken.Token
	pos  int
	errs []error
}

// Scratch holds the parser's reusable buffers — today the token slice,
// the dominant per-parse allocation. A Scratch is not safe for
// concurrent use; callers pool them (sync.Pool) and hand one to
// ParseWith per parse. The zero value is ready to use.
type Scratch struct {
	toks []pytoken.Token
}

// Reset drops the buffered contents but keeps the grown capacity, so a
// pooled Scratch never retains token literals between uses longer than
// necessary. ParseWith resets implicitly; Reset exists for pools that
// want to scrub on release.
func (s *Scratch) Reset() {
	clear(s.toks)
	s.toks = s.toks[:0]
}

// Parse parses src into a module. The returned module contains every
// statement that parsed successfully even when err is non-nil.
func Parse(file, src string) (*pyast.Module, error) {
	return ParseWith(nil, file, src)
}

// ParseWith is Parse with a reusable Scratch: the token buffer from
// earlier parses is reused instead of reallocated. The resulting module
// is independent of the scratch (AST nodes copy what they keep), so the
// scratch can be reused immediately. A nil scratch falls back to fresh
// allocation; output is identical either way.
func ParseWith(sc *Scratch, file, src string) (*pyast.Module, error) {
	var buf []pytoken.Token
	if sc != nil {
		buf = sc.toks
	}
	toks, scanErr := pytoken.ScanAllInto(file, src, buf)
	if sc != nil {
		sc.toks = toks // keep the (possibly grown) buffer for the next parse
	}
	p := &parser{file: file, toks: toks}
	if scanErr != nil {
		p.errs = append(p.errs, scanErr)
	}
	mod := &pyast.Module{File: file, Body: p.parseSuiteUntil(pytoken.EOF)}
	return mod, p.err()
}

func (p *parser) err() error {
	if len(p.errs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(p.errs))
	for _, e := range p.errs {
		msgs = append(msgs, e.Error())
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

func (p *parser) cur() pytoken.Token     { return p.toks[p.pos] }
func (p *parser) at(k pytoken.Kind) bool { return p.cur().Kind == k }

func (p *parser) peekKind(n int) pytoken.Kind {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n].Kind
	}
	return pytoken.EOF
}

func (p *parser) next() pytoken.Token {
	t := p.cur()
	if t.Kind != pytoken.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k pytoken.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k pytoken.Kind) pytoken.Token {
	if !p.at(k) {
		p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next()
}

func (p *parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &ParseError{File: p.file, Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
	panic(bailout{})
}

// sync skips tokens until just past the next NEWLINE at bracket depth zero
// (the scanner guarantees NEWLINE only appears at depth zero), or until a
// DEDENT/EOF, so parsing can resume at the next statement.
func (p *parser) sync() {
	for {
		switch p.cur().Kind {
		case pytoken.EOF, pytoken.DEDENT:
			return
		case pytoken.NEWLINE:
			p.next()
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Statements

// parseSuiteUntil parses statements until the terminator kind, recovering
// from per-statement errors.
func (p *parser) parseSuiteUntil(end pytoken.Kind) []pyast.Stmt {
	var body []pyast.Stmt
	for !p.at(end) && !p.at(pytoken.EOF) {
		before := p.pos
		stmts := p.parseStatementRecover()
		body = append(body, stmts...)
		if p.pos == before {
			// Guarantee progress on malformed input (e.g. a stray DEDENT
			// at top level that error recovery refuses to consume).
			p.next()
		}
	}
	if p.at(end) && end != pytoken.EOF {
		p.next()
	}
	return body
}

func (p *parser) parseStatementRecover() (stmts []pyast.Stmt) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			p.sync()
		}
	}()
	return p.parseStatement()
}

// parseStatement parses one logical line (possibly several simple
// statements separated by semicolons) or one compound statement.
func (p *parser) parseStatement() []pyast.Stmt {
	switch p.cur().Kind {
	case pytoken.NEWLINE:
		p.next()
		return nil
	case pytoken.KwIf:
		return []pyast.Stmt{p.parseIf()}
	case pytoken.KwWhile:
		return []pyast.Stmt{p.parseWhile()}
	case pytoken.KwFor:
		return []pyast.Stmt{p.parseFor(false)}
	case pytoken.KwTry:
		return []pyast.Stmt{p.parseTry()}
	case pytoken.KwWith:
		return []pyast.Stmt{p.parseWith(false)}
	case pytoken.KwDef:
		return []pyast.Stmt{p.parseFunctionDef(nil, false)}
	case pytoken.KwClass:
		return []pyast.Stmt{p.parseClassDef(nil)}
	case pytoken.AT:
		return []pyast.Stmt{p.parseDecorated()}
	case pytoken.KwAsync:
		return []pyast.Stmt{p.parseAsync()}
	default:
		return p.parseSimpleLine()
	}
}

func (p *parser) parseAsync() pyast.Stmt {
	p.next() // async
	switch p.cur().Kind {
	case pytoken.KwDef:
		return p.parseFunctionDef(nil, true)
	case pytoken.KwFor:
		return p.parseFor(true)
	case pytoken.KwWith:
		return p.parseWith(true)
	}
	p.errorf("expected def, for, or with after async")
	return nil
}

func (p *parser) parseDecorated() pyast.Stmt {
	var decorators []pyast.Expr
	for p.at(pytoken.AT) {
		p.next()
		decorators = append(decorators, p.parseExpr())
		p.expect(pytoken.NEWLINE)
	}
	switch p.cur().Kind {
	case pytoken.KwDef:
		return p.parseFunctionDef(decorators, false)
	case pytoken.KwClass:
		return p.parseClassDef(decorators)
	case pytoken.KwAsync:
		p.next()
		if p.at(pytoken.KwDef) {
			return p.parseFunctionDef(decorators, true)
		}
	}
	p.errorf("expected def or class after decorators")
	return nil
}

func (p *parser) parseFunctionDef(decorators []pyast.Expr, async bool) pyast.Stmt {
	defTok := p.expect(pytoken.KwDef)
	name := p.expect(pytoken.NAME)
	p.expect(pytoken.LPAREN)
	params := p.parseParams(pytoken.RPAREN, true)
	p.expect(pytoken.RPAREN)
	var returns pyast.Expr
	if p.accept(pytoken.ARROW) {
		returns = p.parseExpr()
	}
	body := p.parseBlock()
	return &pyast.FunctionDef{
		DefPos: defTok.Pos, Name: name.Lit, Params: params,
		Decorators: decorators, Returns: returns, Body: body, Async: async,
	}
}

// parseParams parses a parameter list up to (not including) end.
// It handles defaults, annotations (when allowAnn — lambdas forbid them,
// since `:` ends the lambda's parameter list), *args, **kwargs, and the
// bare `*` and `/` separators (recorded only for their effect on parsing).
func (p *parser) parseParams(end pytoken.Kind, allowAnn bool) []*pyast.Param {
	var params []*pyast.Param
	for !p.at(end) && !p.at(pytoken.EOF) {
		switch {
		case p.accept(pytoken.SLASH):
			// positional-only marker: nothing to record
		case p.at(pytoken.STAR):
			starPos := p.next().Pos
			if p.at(pytoken.NAME) {
				prm := &pyast.Param{NamePos: starPos, Name: p.next().Lit, Star: true}
				p.parseParamTail(prm, allowAnn)
				params = append(params, prm)
			}
			// bare `*` (keyword-only marker): nothing to record
		case p.at(pytoken.DOUBLESTAR):
			pos := p.next().Pos
			nm := p.expect(pytoken.NAME)
			prm := &pyast.Param{NamePos: pos, Name: nm.Lit, DoubleStar: true}
			p.parseParamTail(prm, allowAnn)
			params = append(params, prm)
		case p.at(pytoken.NAME):
			nm := p.next()
			prm := &pyast.Param{NamePos: nm.Pos, Name: nm.Lit}
			p.parseParamTail(prm, allowAnn)
			params = append(params, prm)
		default:
			p.errorf("unexpected %s in parameter list", p.cur())
		}
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
	return params
}

func (p *parser) parseParamTail(prm *pyast.Param, allowAnn bool) {
	if allowAnn && p.accept(pytoken.COLON) {
		prm.Annotation = p.parseExpr()
	}
	if p.accept(pytoken.ASSIGN) {
		prm.Default = p.parseExpr()
	}
}

func (p *parser) parseClassDef(decorators []pyast.Expr) pyast.Stmt {
	classTok := p.expect(pytoken.KwClass)
	name := p.expect(pytoken.NAME)
	var bases []pyast.Expr
	var kws []*pyast.Keyword
	if p.accept(pytoken.LPAREN) {
		bases, kws = p.parseCallArgs()
		p.expect(pytoken.RPAREN)
	}
	body := p.parseBlock()
	return &pyast.ClassDef{
		ClassPos: classTok.Pos, Name: name.Lit, Bases: bases,
		Keywords: kws, Decorators: decorators, Body: body,
	}
}

// parseBlock parses `: NEWLINE INDENT stmts DEDENT` or a same-line suite.
func (p *parser) parseBlock() []pyast.Stmt {
	p.expect(pytoken.COLON)
	if p.accept(pytoken.NEWLINE) {
		p.expect(pytoken.INDENT)
		return p.parseSuiteUntil(pytoken.DEDENT)
	}
	// Inline suite: `if x: y = 1; z = 2`
	stmts := p.parseSimpleLine()
	return stmts
}

func (p *parser) parseIf() pyast.Stmt {
	ifTok := p.next()
	cond := p.parseNamedExprOrExpr()
	body := p.parseBlock()
	var els []pyast.Stmt
	switch p.cur().Kind {
	case pytoken.KwElif:
		els = []pyast.Stmt{p.parseIf()} // KwElif parses like KwIf
	case pytoken.KwElse:
		p.next()
		els = p.parseBlock()
	}
	return &pyast.If{IfPos: ifTok.Pos, Cond: cond, Body: body, Else: els}
}

func (p *parser) parseWhile() pyast.Stmt {
	tok := p.next()
	cond := p.parseNamedExprOrExpr()
	body := p.parseBlock()
	var els []pyast.Stmt
	if p.accept(pytoken.KwElse) {
		els = p.parseBlock()
	}
	return &pyast.While{WhilePos: tok.Pos, Cond: cond, Body: body, Else: els}
}

func (p *parser) parseFor(async bool) pyast.Stmt {
	tok := p.expect(pytoken.KwFor)
	target := p.parseTargetList()
	p.expect(pytoken.KwIn)
	iter := p.parseExprList()
	body := p.parseBlock()
	var els []pyast.Stmt
	if p.accept(pytoken.KwElse) {
		els = p.parseBlock()
	}
	return &pyast.For{ForPos: tok.Pos, Target: target, Iter: iter, Body: body, Else: els, Async: async}
}

func (p *parser) parseTry() pyast.Stmt {
	tok := p.next()
	body := p.parseBlock()
	t := &pyast.Try{TryPos: tok.Pos, Body: body}
	for p.at(pytoken.KwExcept) {
		exTok := p.next()
		h := &pyast.ExceptHandler{ExceptPos: exTok.Pos}
		if !p.at(pytoken.COLON) {
			h.Type = p.parseExpr()
			if p.accept(pytoken.KwAs) {
				h.Name = p.expect(pytoken.NAME).Lit
			}
		}
		h.Body = p.parseBlock()
		t.Handlers = append(t.Handlers, h)
	}
	if p.accept(pytoken.KwElse) {
		t.Else = p.parseBlock()
	}
	if p.accept(pytoken.KwFinally) {
		t.Finally = p.parseBlock()
	}
	if len(t.Handlers) == 0 && t.Finally == nil {
		p.errorf("try statement must have except or finally")
	}
	return t
}

func (p *parser) parseWith(async bool) pyast.Stmt {
	tok := p.expect(pytoken.KwWith)
	w := &pyast.With{WithPos: tok.Pos, Async: async}
	for {
		item := &pyast.WithItem{Context: p.parseExpr()}
		if p.accept(pytoken.KwAs) {
			item.Vars = p.parsePrimaryTarget()
		}
		w.Items = append(w.Items, item)
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
	w.Body = p.parseBlock()
	return w
}

// parseSimpleLine parses semicolon-separated simple statements up to NEWLINE.
func (p *parser) parseSimpleLine() []pyast.Stmt {
	var stmts []pyast.Stmt
	for {
		stmts = append(stmts, p.parseSimpleStatement())
		if !p.accept(pytoken.SEMI) {
			break
		}
		if p.at(pytoken.NEWLINE) || p.at(pytoken.EOF) {
			break
		}
	}
	if !p.accept(pytoken.NEWLINE) && !p.at(pytoken.EOF) && !p.at(pytoken.DEDENT) {
		p.errorf("expected end of statement, found %s", p.cur())
	}
	return stmts
}

func (p *parser) parseSimpleStatement() pyast.Stmt {
	switch p.cur().Kind {
	case pytoken.KwReturn:
		tok := p.next()
		var val pyast.Expr
		if !p.at(pytoken.NEWLINE) && !p.at(pytoken.SEMI) && !p.at(pytoken.EOF) && !p.at(pytoken.DEDENT) {
			val = p.parseExprList()
		}
		return &pyast.Return{ReturnPos: tok.Pos, Value: val}
	case pytoken.KwPass:
		return &pyast.Pass{PassPos: p.next().Pos}
	case pytoken.KwBreak:
		return &pyast.Break{BreakPos: p.next().Pos}
	case pytoken.KwContinue:
		return &pyast.Continue{ContinuePos: p.next().Pos}
	case pytoken.KwDel:
		tok := p.next()
		d := &pyast.Delete{DelPos: tok.Pos}
		for {
			d.Targets = append(d.Targets, p.parsePrimaryTarget())
			if !p.accept(pytoken.COMMA) {
				break
			}
		}
		return d
	case pytoken.KwRaise:
		tok := p.next()
		r := &pyast.Raise{RaisePos: tok.Pos}
		if !p.at(pytoken.NEWLINE) && !p.at(pytoken.SEMI) && !p.at(pytoken.EOF) && !p.at(pytoken.DEDENT) {
			r.Exc = p.parseExpr()
			if p.accept(pytoken.KwFrom) {
				r.Cause = p.parseExpr()
			}
		}
		return r
	case pytoken.KwImport:
		return p.parseImport()
	case pytoken.KwFrom:
		return p.parseImportFrom()
	case pytoken.KwGlobal:
		tok := p.next()
		return &pyast.Global{GlobalPos: tok.Pos, Names: p.parseNameList()}
	case pytoken.KwNonlocal:
		tok := p.next()
		return &pyast.Nonlocal{NonlocalPos: tok.Pos, Names: p.parseNameList()}
	case pytoken.KwAssert:
		tok := p.next()
		a := &pyast.Assert{AssertPos: tok.Pos, Cond: p.parseExpr()}
		if p.accept(pytoken.COMMA) {
			a.Msg = p.parseExpr()
		}
		return a
	default:
		return p.parseExprOrAssign()
	}
}

func (p *parser) parseNameList() []string {
	var names []string
	for {
		names = append(names, p.expect(pytoken.NAME).Lit)
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
	return names
}

func (p *parser) parseImport() pyast.Stmt {
	tok := p.next()
	imp := &pyast.Import{ImportPos: tok.Pos}
	for {
		imp.Names = append(imp.Names, p.parseAlias(true))
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
	return imp
}

func (p *parser) parseImportFrom() pyast.Stmt {
	tok := p.next() // from
	level := 0
	for {
		if p.accept(pytoken.DOT) {
			level++
		} else if p.accept(pytoken.ELLIPSIS) {
			level += 3
		} else {
			break
		}
	}
	module := ""
	if p.at(pytoken.NAME) {
		module = p.parseDottedName()
	}
	p.expect(pytoken.KwImport)
	imp := &pyast.ImportFrom{FromPos: tok.Pos, Module: module, Level: level}
	if p.accept(pytoken.STAR) {
		imp.Names = append(imp.Names, &pyast.Alias{Name: "*"})
		return imp
	}
	paren := p.accept(pytoken.LPAREN)
	for {
		imp.Names = append(imp.Names, p.parseAlias(false))
		if !p.accept(pytoken.COMMA) {
			break
		}
		if paren && p.at(pytoken.RPAREN) {
			break
		}
	}
	if paren {
		p.expect(pytoken.RPAREN)
	}
	return imp
}

func (p *parser) parseAlias(dotted bool) *pyast.Alias {
	var name string
	if dotted {
		name = p.parseDottedName()
	} else {
		name = p.expect(pytoken.NAME).Lit
	}
	a := &pyast.Alias{Name: name}
	if p.accept(pytoken.KwAs) {
		a.AsName = p.expect(pytoken.NAME).Lit
	}
	return a
}

func (p *parser) parseDottedName() string {
	var b strings.Builder
	b.WriteString(p.expect(pytoken.NAME).Lit)
	for p.at(pytoken.DOT) && p.peekKind(1) == pytoken.NAME {
		p.next()
		b.WriteByte('.')
		b.WriteString(p.next().Lit)
	}
	return b.String()
}

// parseExprOrAssign parses an expression statement, assignment chain,
// augmented assignment, or annotated assignment.
func (p *parser) parseExprOrAssign() pyast.Stmt {
	first := p.parseExprList()
	switch {
	case p.at(pytoken.ASSIGN):
		targets := []pyast.Expr{first}
		var value pyast.Expr
		for p.accept(pytoken.ASSIGN) {
			value = p.parseExprListOrYield()
			if p.at(pytoken.ASSIGN) {
				targets = append(targets, value)
			}
		}
		return &pyast.Assign{Targets: targets, Value: value}
	case p.at(pytoken.COLON):
		p.next()
		ann := p.parseExpr()
		st := &pyast.AnnAssign{Target: first, Annotation: ann}
		if p.accept(pytoken.ASSIGN) {
			st.Value = p.parseExprListOrYield()
		}
		return st
	case isAugAssign(p.cur().Kind):
		op := p.next().Kind
		return &pyast.AugAssign{Target: first, Op: op, Value: p.parseExprListOrYield()}
	default:
		return &pyast.ExprStmt{Value: first}
	}
}

func isAugAssign(k pytoken.Kind) bool {
	switch k {
	case pytoken.PLUSEQ, pytoken.MINUSEQ, pytoken.STAREQ, pytoken.SLASHEQ,
		pytoken.DOUBLESLASHEQ, pytoken.PERCENTEQ, pytoken.AMPEREQ,
		pytoken.PIPEEQ, pytoken.CARETEQ, pytoken.LSHIFTEQ,
		pytoken.RSHIFTEQ, pytoken.DOUBLESTAREQ, pytoken.ATEQ:
		return true
	}
	return false
}

func (p *parser) parseExprListOrYield() pyast.Expr {
	if p.at(pytoken.KwYield) {
		return p.parseYield()
	}
	return p.parseExprList()
}

// parseExprList parses `expr (, expr)* [,]`, returning a Tuple when more
// than one element (or a trailing comma) is present.
func (p *parser) parseExprList() pyast.Expr {
	first := p.parseStarOrExpr()
	if !p.at(pytoken.COMMA) {
		return first
	}
	tup := &pyast.Tuple{TuplePos: first.Pos(), Elts: []pyast.Expr{first}}
	for p.accept(pytoken.COMMA) {
		if p.exprListEnds() {
			break
		}
		tup.Elts = append(tup.Elts, p.parseStarOrExpr())
	}
	return tup
}

func (p *parser) exprListEnds() bool {
	switch p.cur().Kind {
	case pytoken.NEWLINE, pytoken.EOF, pytoken.SEMI, pytoken.ASSIGN,
		pytoken.RPAREN, pytoken.RBRACKET, pytoken.RBRACE, pytoken.COLON,
		pytoken.DEDENT:
		return true
	}
	return false
}

func (p *parser) parseStarOrExpr() pyast.Expr {
	if p.at(pytoken.STAR) {
		tok := p.next()
		return &pyast.Starred{StarPos: tok.Pos, Value: p.parseExpr()}
	}
	return p.parseExpr()
}

// parseTargetList parses a for-loop target (possibly a tuple).
func (p *parser) parseTargetList() pyast.Expr {
	first := p.parseStarOrTarget()
	if !p.at(pytoken.COMMA) {
		return first
	}
	tup := &pyast.Tuple{TuplePos: first.Pos(), Elts: []pyast.Expr{first}}
	for p.accept(pytoken.COMMA) {
		if p.at(pytoken.KwIn) {
			break
		}
		tup.Elts = append(tup.Elts, p.parseStarOrTarget())
	}
	return tup
}

func (p *parser) parseStarOrTarget() pyast.Expr {
	if p.at(pytoken.STAR) {
		tok := p.next()
		return &pyast.Starred{StarPos: tok.Pos, Value: p.parsePrimaryTarget()}
	}
	return p.parsePrimaryTarget()
}

// parsePrimaryTarget parses an assignable primary: name, attribute,
// subscript, or a parenthesized/bracketed target list.
func (p *parser) parsePrimaryTarget() pyast.Expr {
	return p.parsePostfix(p.parseAtom())
}
