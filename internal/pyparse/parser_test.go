package pyparse

import (
	"strings"
	"testing"
	"testing/quick"

	"seldon/internal/pyast"
	"seldon/internal/pytoken"
)

func mustParse(t *testing.T, src string) *pyast.Module {
	t.Helper()
	mod, err := Parse("test.py", src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return mod
}

// exprOf parses a one-line expression statement and returns its expression.
func exprOf(t *testing.T, src string) pyast.Expr {
	t.Helper()
	mod := mustParse(t, src+"\n")
	if len(mod.Body) != 1 {
		t.Fatalf("want 1 statement, got %d", len(mod.Body))
	}
	es, ok := mod.Body[0].(*pyast.ExprStmt)
	if !ok {
		t.Fatalf("want ExprStmt, got %T", mod.Body[0])
	}
	return es.Value
}

func TestUnparseRoundTrip(t *testing.T) {
	// For canonical inputs, parse→unparse must be the identity.
	cases := []string{
		"x",
		"x.y.z",
		"f(a, b)",
		"f(a, key=b)",
		"f(*args, **kwargs)",
		"d[k]",
		"d[1:2]",
		"d[1:2:3]",
		"x + y",
		"request.files['f'].filename",
		"request.files['f'].save(path)",
		"os.path.join(blog_dir, filename)",
		"[x, y]",
		"{1: 'a', 2: 'b'}",
		"{x, y}",
		"(a, b)",
		"not x",
		"-x",
		"x < y",
		"a in b",
		"a not in b",
		"a is not b",
		"lambda x: x",
		"[x for x in y]",
		"[x for x in y if x]",
		"{k: v for k, v in items}",
		"(x for x in y)",
		"await f(x)",
		"x if c else y",
		"a == b == c",
	}
	for _, src := range cases {
		e := exprOf(t, src)
		got := pyast.Unparse(e)
		// IfExp and chains get canonical parens; normalize expectations.
		want := src
		switch src {
		case "x if c else y":
			want = "x if c else y"
		case "(a, b)":
			want = "(a, b)"
		case "{k: v for k, v in items}":
			want = "{k: v for (k, v) in items}"
		}
		if got != want {
			t.Errorf("Unparse(parse(%q)) = %q", src, got)
		}
	}
}

func TestFunctionDef(t *testing.T) {
	src := `def media(f, size=10, *args, **kwargs):
    return f
`
	mod := mustParse(t, src)
	fn, ok := mod.Body[0].(*pyast.FunctionDef)
	if !ok {
		t.Fatalf("want FunctionDef, got %T", mod.Body[0])
	}
	if fn.Name != "media" {
		t.Errorf("name = %q", fn.Name)
	}
	if len(fn.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(fn.Params))
	}
	if fn.Params[1].Default == nil {
		t.Error("size should have a default")
	}
	if !fn.Params[2].Star || fn.Params[2].Name != "args" {
		t.Errorf("param 2 = %+v, want *args", fn.Params[2])
	}
	if !fn.Params[3].DoubleStar || fn.Params[3].Name != "kwargs" {
		t.Errorf("param 3 = %+v, want **kwargs", fn.Params[3])
	}
	if len(fn.Body) != 1 {
		t.Errorf("body = %d statements", len(fn.Body))
	}
}

func TestDecoratedFunction(t *testing.T) {
	src := `@app.route('/media/', methods=['POST'])
def media():
    pass
`
	mod := mustParse(t, src)
	fn := mod.Body[0].(*pyast.FunctionDef)
	if len(fn.Decorators) != 1 {
		t.Fatalf("decorators = %d", len(fn.Decorators))
	}
	call, ok := fn.Decorators[0].(*pyast.Call)
	if !ok {
		t.Fatalf("decorator is %T", fn.Decorators[0])
	}
	if pyast.Unparse(call.Func) != "app.route" {
		t.Errorf("decorator func = %q", pyast.Unparse(call.Func))
	}
	if len(call.Keywords) != 1 || call.Keywords[0].Name != "methods" {
		t.Errorf("keywords = %+v", call.Keywords)
	}
}

func TestClassDef(t *testing.T) {
	src := `class ESCPOSDriver(ThreadDriver, metaclass=Meta):
    def status(self, eprint):
        self.receipt('<div>' + msg + '</div>')
`
	mod := mustParse(t, src)
	cls := mod.Body[0].(*pyast.ClassDef)
	if cls.Name != "ESCPOSDriver" {
		t.Errorf("name = %q", cls.Name)
	}
	if len(cls.Bases) != 1 || pyast.Unparse(cls.Bases[0]) != "ThreadDriver" {
		t.Errorf("bases = %v", cls.Bases)
	}
	if len(cls.Keywords) != 1 || cls.Keywords[0].Name != "metaclass" {
		t.Errorf("keywords = %+v", cls.Keywords)
	}
	method := cls.Body[0].(*pyast.FunctionDef)
	if method.Name != "status" || len(method.Params) != 2 {
		t.Errorf("method = %q params %d", method.Name, len(method.Params))
	}
}

func TestPaperFigure2Snippet(t *testing.T) {
	src := `from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
`
	mod := mustParse(t, src)
	if len(mod.Body) != 6 {
		t.Fatalf("top-level statements = %d, want 6", len(mod.Body))
	}
	imp := mod.Body[0].(*pyast.ImportFrom)
	if imp.Module != "yak.web" || imp.Names[0].Name != "app" {
		t.Errorf("import 0 = %+v", imp)
	}
	fn := mod.Body[5].(*pyast.FunctionDef)
	if len(fn.Body) != 4 {
		t.Fatalf("function body = %d statements", len(fn.Body))
	}
	ifStmt := fn.Body[3].(*pyast.If)
	call := ifStmt.Body[0].(*pyast.ExprStmt).Value.(*pyast.Call)
	if got := pyast.Unparse(call); got != "request.files['f'].save(path)" {
		t.Errorf("sink call = %q", got)
	}
}

func TestAssignmentForms(t *testing.T) {
	mod := mustParse(t, "a = b = f()\nx += 1\ny: int = 2\nz[0] = 3\nw.attr = 4\n(p, q) = pair\n")
	if a := mod.Body[0].(*pyast.Assign); len(a.Targets) != 2 {
		t.Errorf("chained assign targets = %d", len(a.Targets))
	}
	if _, ok := mod.Body[1].(*pyast.AugAssign); !ok {
		t.Errorf("statement 1 = %T", mod.Body[1])
	}
	ann := mod.Body[2].(*pyast.AnnAssign)
	if pyast.Unparse(ann.Annotation) != "int" || ann.Value == nil {
		t.Errorf("annassign = %+v", ann)
	}
	if tgt := mod.Body[3].(*pyast.Assign).Targets[0]; pyast.Unparse(tgt) != "z[0]" {
		t.Errorf("subscript target = %q", pyast.Unparse(tgt))
	}
	if tgt := mod.Body[4].(*pyast.Assign).Targets[0]; pyast.Unparse(tgt) != "w.attr" {
		t.Errorf("attribute target = %q", pyast.Unparse(tgt))
	}
	if tgt := mod.Body[5].(*pyast.Assign).Targets[0]; pyast.Unparse(tgt) != "(p, q)" {
		t.Errorf("tuple target = %q", pyast.Unparse(tgt))
	}
}

func TestTupleUnpackingWithoutParens(t *testing.T) {
	mod := mustParse(t, "a, b = 1, 2\n")
	assign := mod.Body[0].(*pyast.Assign)
	tgt, ok := assign.Targets[0].(*pyast.Tuple)
	if !ok || len(tgt.Elts) != 2 {
		t.Fatalf("target = %s", pyast.Unparse(assign.Targets[0]))
	}
	val, ok := assign.Value.(*pyast.Tuple)
	if !ok || len(val.Elts) != 2 {
		t.Fatalf("value = %s", pyast.Unparse(assign.Value))
	}
}

func TestControlFlow(t *testing.T) {
	src := `while x > 0:
    x -= 1
else:
    done()
for i in range(10):
    if i % 2 == 0:
        continue
    elif i == 7:
        break
    else:
        use(i)
try:
    risky()
except ValueError as e:
    handle(e)
except:
    pass
else:
    ok()
finally:
    cleanup()
with open(p) as f, lock:
    f.read()
`
	mod := mustParse(t, src)
	if len(mod.Body) != 4 {
		t.Fatalf("statements = %d, want 4", len(mod.Body))
	}
	w := mod.Body[0].(*pyast.While)
	if len(w.Else) != 1 {
		t.Errorf("while-else = %d", len(w.Else))
	}
	f := mod.Body[1].(*pyast.For)
	inner := f.Body[0].(*pyast.If)
	elif, ok := inner.Else[0].(*pyast.If)
	if !ok {
		t.Fatalf("elif not nested If: %T", inner.Else[0])
	}
	if len(elif.Else) != 1 {
		t.Errorf("else body = %d", len(elif.Else))
	}
	tr := mod.Body[2].(*pyast.Try)
	if len(tr.Handlers) != 2 || tr.Handlers[0].Name != "e" || len(tr.Else) != 1 || len(tr.Finally) != 1 {
		t.Errorf("try = %+v", tr)
	}
	wi := mod.Body[3].(*pyast.With)
	if len(wi.Items) != 2 || wi.Items[0].Vars == nil || wi.Items[1].Vars != nil {
		t.Errorf("with items = %+v", wi.Items)
	}
}

func TestImports(t *testing.T) {
	mod := mustParse(t, "import os, sys as system\nfrom . import sibling\nfrom ..pkg import a as b, c\nfrom mod import (x,\n    y)\nfrom m import *\n")
	imp := mod.Body[0].(*pyast.Import)
	if imp.Names[1].Name != "sys" || imp.Names[1].AsName != "system" {
		t.Errorf("import aliases = %+v", imp.Names[1])
	}
	rel := mod.Body[1].(*pyast.ImportFrom)
	if rel.Level != 1 || rel.Module != "" {
		t.Errorf("relative import = %+v", rel)
	}
	rel2 := mod.Body[2].(*pyast.ImportFrom)
	if rel2.Level != 2 || rel2.Module != "pkg" || rel2.Names[0].AsName != "b" {
		t.Errorf("relative import 2 = %+v", rel2)
	}
	par := mod.Body[3].(*pyast.ImportFrom)
	if len(par.Names) != 2 {
		t.Errorf("parenthesized import names = %d", len(par.Names))
	}
	star := mod.Body[4].(*pyast.ImportFrom)
	if star.Names[0].Name != "*" {
		t.Errorf("star import = %+v", star.Names)
	}
}

func TestChainedComparison(t *testing.T) {
	e := exprOf(t, "0 <= x < n")
	cmp := e.(*pyast.Compare)
	if len(cmp.Ops) != 2 || cmp.Ops[0].Kind != pytoken.LE || cmp.Ops[1].Kind != pytoken.LT {
		t.Errorf("ops = %+v", cmp.Ops)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e := exprOf(t, "a + b * c")
	bin := e.(*pyast.BinOp)
	if bin.Op != pytoken.PLUS {
		t.Fatalf("root op = %v", bin.Op)
	}
	right := bin.Right.(*pyast.BinOp)
	if right.Op != pytoken.STAR {
		t.Errorf("right op = %v", right.Op)
	}

	e = exprOf(t, "a or b and not c")
	or := e.(*pyast.BoolOp)
	if or.Op != pytoken.KwOr {
		t.Fatalf("root = %v", or.Op)
	}
	and := or.Values[1].(*pyast.BoolOp)
	if and.Op != pytoken.KwAnd {
		t.Fatalf("second = %v", and.Op)
	}
	if _, ok := and.Values[1].(*pyast.UnaryOp); !ok {
		t.Errorf("not c = %T", and.Values[1])
	}

	e = exprOf(t, "2 ** 3 ** 4")
	pow := e.(*pyast.BinOp)
	if _, ok := pow.Right.(*pyast.BinOp); !ok {
		t.Errorf("** should be right-associative, right = %T", pow.Right)
	}
}

func TestComprehensions(t *testing.T) {
	e := exprOf(t, "[f(x) for x in xs if x > 0 for y in ys]")
	comp := e.(*pyast.Comp)
	if comp.Kind != pyast.ListComp || len(comp.Clauses) != 2 {
		t.Fatalf("comp = %+v", comp)
	}
	if len(comp.Clauses[0].Ifs) != 1 {
		t.Errorf("ifs = %d", len(comp.Clauses[0].Ifs))
	}
	e = exprOf(t, "{k: v for k in ks}")
	dcomp := e.(*pyast.Comp)
	if dcomp.Kind != pyast.DictComp || dcomp.Value == nil {
		t.Errorf("dict comp = %+v", dcomp)
	}
	e = exprOf(t, "sum(x*x for x in xs)")
	call := e.(*pyast.Call)
	gen := call.Args[0].(*pyast.Comp)
	if gen.Kind != pyast.GeneratorExp {
		t.Errorf("generator arg kind = %v", gen.Kind)
	}
}

func TestStringConcatenation(t *testing.T) {
	e := exprOf(t, `'a' 'b' "c"`)
	s := e.(*pyast.Str)
	if s.Lit != `'a''b'"c"` {
		t.Errorf("lit = %q", s.Lit)
	}
}

func TestYieldForms(t *testing.T) {
	src := `def gen():
    yield
    yield 1
    yield 1, 2
    x = yield v
    yield from inner()
`
	mod := mustParse(t, src)
	fn := mod.Body[0].(*pyast.FunctionDef)
	y0 := fn.Body[0].(*pyast.ExprStmt).Value.(*pyast.Yield)
	if y0.Value != nil {
		t.Error("bare yield should have nil value")
	}
	y2 := fn.Body[2].(*pyast.ExprStmt).Value.(*pyast.Yield)
	if _, ok := y2.Value.(*pyast.Tuple); !ok {
		t.Errorf("yield 1, 2 value = %T", y2.Value)
	}
	asg := fn.Body[3].(*pyast.Assign)
	if _, ok := asg.Value.(*pyast.Yield); !ok {
		t.Errorf("x = yield v: value = %T", asg.Value)
	}
	yf := fn.Body[4].(*pyast.ExprStmt).Value.(*pyast.Yield)
	if !yf.From {
		t.Error("yield from not marked")
	}
}

func TestAsyncForms(t *testing.T) {
	src := `async def handler(req):
    async with session.get(url) as resp:
        data = await resp.json()
    async for row in cursor:
        use(row)
`
	mod := mustParse(t, src)
	fn := mod.Body[0].(*pyast.FunctionDef)
	if !fn.Async {
		t.Error("function not async")
	}
	w := fn.Body[0].(*pyast.With)
	if !w.Async {
		t.Error("with not async")
	}
	aw := w.Body[0].(*pyast.Assign).Value.(*pyast.Await)
	if pyast.Unparse(aw.Value) != "resp.json()" {
		t.Errorf("await value = %q", pyast.Unparse(aw.Value))
	}
	f := fn.Body[1].(*pyast.For)
	if !f.Async {
		t.Error("for not async")
	}
}

func TestGlobalNonlocalDelAssert(t *testing.T) {
	src := `global a, b
nonlocal c
del d, e.f
assert x, "message"
`
	mod := mustParse(t, src)
	g := mod.Body[0].(*pyast.Global)
	if len(g.Names) != 2 {
		t.Errorf("global names = %v", g.Names)
	}
	if _, ok := mod.Body[1].(*pyast.Nonlocal); !ok {
		t.Errorf("statement 1 = %T", mod.Body[1])
	}
	d := mod.Body[2].(*pyast.Delete)
	if len(d.Targets) != 2 || pyast.Unparse(d.Targets[1]) != "e.f" {
		t.Errorf("del targets = %v", d.Targets)
	}
	a := mod.Body[3].(*pyast.Assert)
	if a.Msg == nil {
		t.Error("assert message missing")
	}
}

func TestWalrus(t *testing.T) {
	src := "if (n := len(a)) > 10:\n    pass\n"
	mod := mustParse(t, src)
	ifs := mod.Body[0].(*pyast.If)
	cmp := ifs.Cond.(*pyast.Compare)
	if _, ok := cmp.Left.(*pyast.NamedExpr); !ok {
		t.Errorf("walrus = %T", cmp.Left)
	}
}

func TestInlineSuite(t *testing.T) {
	mod := mustParse(t, "if x: y = 1; z = 2\n")
	ifs := mod.Body[0].(*pyast.If)
	if len(ifs.Body) != 2 {
		t.Errorf("inline suite statements = %d", len(ifs.Body))
	}
}

func TestSyntaxErrorRecovery(t *testing.T) {
	src := "x = 1\ny = ((\nz = 3\n"
	mod, err := Parse("test.py", src)
	if err == nil {
		t.Error("expected a syntax error")
	}
	// x = 1 must still be present despite the bad middle line.
	if len(mod.Body) == 0 {
		t.Fatal("no statements recovered")
	}
	if pyast.Unparse(mod.Body[0].(*pyast.Assign).Targets[0]) != "x" {
		t.Error("first statement lost")
	}
}

func TestErrorPositionsReported(t *testing.T) {
	_, err := Parse("app.py", "def f(:\n    pass\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "app.py:1:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestDeeplyNestedStructures(t *testing.T) {
	var b strings.Builder
	depth := 40
	for i := 0; i < depth; i++ {
		b.WriteString(strings.Repeat("    ", i))
		b.WriteString("if x:\n")
	}
	b.WriteString(strings.Repeat("    ", depth))
	b.WriteString("pass\n")
	mod := mustParse(t, b.String())
	count := 0
	pyast.Inspect(mod, func(n pyast.Node) bool {
		if _, ok := n.(*pyast.If); ok {
			count++
		}
		return true
	})
	if count != depth {
		t.Errorf("nested ifs = %d, want %d", count, depth)
	}
}

// TestParserNeverPanics: arbitrary byte soup must produce errors, not panics.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse("fuzz.py", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnTokenSoup builds inputs from plausible Python
// fragments, a denser error surface than random strings.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	frags := []string{
		"def ", "f", "(", ")", ":", "\n", "    ", "x", "=", "1", "+",
		"lambda ", "[", "]", "{", "}", ",", "for ", "in ", "if ", "else ",
		"import ", "from ", ".", "*", "**", "yield ", "return ", "@",
		"'s'", "await ", "class ", "try:", "except", "with ", "as ", ":=",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(frags[int(p)%len(frags)])
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", b.String(), r)
			}
		}()
		_, _ = Parse("fuzz.py", b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseModuleStatementCount(t *testing.T) {
	// A file with per-line recovery must keep good statements on both
	// sides of an error.
	src := "a = 1\nb = ?bad?\nc = 3\n"
	mod, err := Parse("test.py", src)
	if err == nil {
		t.Error("expected error")
	}
	got := 0
	for _, s := range mod.Body {
		if _, ok := s.(*pyast.Assign); ok {
			got++
		}
	}
	if got < 2 {
		t.Errorf("recovered assignments = %d, want >= 2", got)
	}
}
