package pyparse

import (
	"strings"

	"seldon/internal/pyast"
	"seldon/internal/pytoken"
)

// parseFString turns an f-string token literal into a JoinedStr whose
// Values are the parsed {…} interpolations, so information flows from the
// interpolated expressions into the string (the f"SELECT {term}" idiom).
// Literals without interpolations, and fragments that fail to parse,
// degrade gracefully.
func parseFString(tok pytoken.Token) pyast.Expr {
	fragments := fstringFragments(tok.Lit)
	if len(fragments) == 0 {
		return &pyast.Str{StrPos: tok.Pos, Lit: tok.Lit}
	}
	js := &pyast.JoinedStr{StrPos: tok.Pos, Lit: tok.Lit}
	for _, frag := range fragments {
		sub := &parser{file: "<f-string>", toks: mustScan(frag)}
		expr := sub.parseFragment()
		if expr != nil {
			js.Values = append(js.Values, expr)
		}
	}
	if len(js.Values) == 0 {
		return &pyast.Str{StrPos: tok.Pos, Lit: tok.Lit}
	}
	return js
}

// parseFragment parses a single expression, returning nil on any error.
func (p *parser) parseFragment() (expr pyast.Expr) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			expr = nil
		}
	}()
	e := p.parseExpr()
	if !p.at(pytoken.NEWLINE) && !p.at(pytoken.EOF) {
		return nil // trailing garbage: not a clean expression
	}
	return e
}

func mustScan(src string) []pytoken.Token {
	toks, _ := pytoken.ScanAll("<f-string>", src)
	return toks
}

// isFStringLit reports whether a STRING literal carries an f prefix.
func isFStringLit(lit string) bool {
	for i := 0; i < len(lit) && i < 2; i++ {
		switch lit[i] {
		case 'f', 'F':
			return true
		case '\'', '"':
			return false
		}
	}
	return false
}

// fstringFragments extracts the expression texts of {…} interpolations
// from an f-string literal (prefix and quotes included). Formatting specs
// ({x:>10}), conversions ({x!r}), and {{ }} escapes are handled.
func fstringFragments(lit string) []string {
	if !isFStringLit(lit) {
		return nil
	}
	body := stripQuotes(lit)
	var out []string
	i := 0
	for i < len(body) {
		c := body[i]
		if c == '{' {
			if i+1 < len(body) && body[i+1] == '{' {
				i += 2 // literal {{
				continue
			}
			frag, next := scanInterpolation(body, i+1)
			if frag != "" {
				out = append(out, frag)
			}
			i = next
			continue
		}
		if c == '}' && i+1 < len(body) && body[i+1] == '}' {
			i += 2 // literal }}
			continue
		}
		i++
	}
	return out
}

// scanInterpolation consumes from just after '{' to the matching '}',
// returning the expression text (format spec and conversion stripped) and
// the index just past the closing brace.
func scanInterpolation(body string, start int) (string, int) {
	depth := 0 // nesting of (, [, { inside the expression
	exprEnd := -1
	var quote byte
	i := start
	for i < len(body) {
		c := body[i]
		if quote != 0 {
			if c == '\\' {
				i += 2
				continue
			}
			if c == quote {
				quote = 0
			}
			i++
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '(', '[', '{':
			depth++
		case ')', ']':
			depth--
		case '}':
			if depth == 0 {
				if exprEnd < 0 {
					exprEnd = i
				}
				return strings.TrimSpace(body[start:exprEnd]), i + 1
			}
			depth--
		case ':':
			if depth == 0 && exprEnd < 0 {
				exprEnd = i // format spec starts
			}
		case '!':
			// Conversion marker: !s, !r, !a directly before } or :.
			if depth == 0 && exprEnd < 0 && i+1 < len(body) &&
				strings.IndexByte("sra", body[i+1]) >= 0 &&
				(i+2 >= len(body) || body[i+2] == '}' || body[i+2] == ':') {
				exprEnd = i
			}
		}
		i++
	}
	// Unterminated interpolation: ignore it.
	return "", len(body)
}

// stripQuotes removes the string prefix and the surrounding quotes.
func stripQuotes(lit string) string {
	i := 0
	for i < len(lit) && lit[i] != '\'' && lit[i] != '"' {
		i++
	}
	if i >= len(lit) {
		return ""
	}
	q := lit[i]
	rest := lit[i:]
	if len(rest) >= 6 && rest[1] == q && rest[2] == q {
		if strings.HasSuffix(rest, strings.Repeat(string(q), 3)) {
			return rest[3 : len(rest)-3]
		}
		return rest[3:]
	}
	if len(rest) >= 2 && rest[len(rest)-1] == q {
		return rest[1 : len(rest)-1]
	}
	return rest[1:]
}
