package pyparse

import (
	"seldon/internal/pyast"
	"seldon/internal/pytoken"
)

// parseNamedExprOrExpr parses `test [:= test]` — walrus is allowed in
// condition positions.
func (p *parser) parseNamedExprOrExpr() pyast.Expr {
	e := p.parseExpr()
	if p.accept(pytoken.WALRUS) {
		return &pyast.NamedExpr{Target: e, Value: p.parseExpr()}
	}
	return e
}

// parseExpr parses a `test`: lambda, conditional expression, or or-expr.
func (p *parser) parseExpr() pyast.Expr {
	if p.at(pytoken.KwLambda) {
		return p.parseLambda()
	}
	e := p.parseOr()
	if p.at(pytoken.KwIf) {
		p.next()
		cond := p.parseOr()
		p.expect(pytoken.KwElse)
		els := p.parseExpr()
		return &pyast.IfExp{Cond: cond, Then: e, Else: els}
	}
	return e
}

func (p *parser) parseLambda() pyast.Expr {
	tok := p.expect(pytoken.KwLambda)
	params := p.parseParams(pytoken.COLON, false)
	p.expect(pytoken.COLON)
	return &pyast.Lambda{LambdaPos: tok.Pos, Params: params, Body: p.parseExpr()}
}

func (p *parser) parseOr() pyast.Expr {
	e := p.parseAnd()
	if !p.at(pytoken.KwOr) {
		return e
	}
	op := &pyast.BoolOp{Op: pytoken.KwOr, Values: []pyast.Expr{e}}
	for p.accept(pytoken.KwOr) {
		op.Values = append(op.Values, p.parseAnd())
	}
	return op
}

func (p *parser) parseAnd() pyast.Expr {
	e := p.parseNot()
	if !p.at(pytoken.KwAnd) {
		return e
	}
	op := &pyast.BoolOp{Op: pytoken.KwAnd, Values: []pyast.Expr{e}}
	for p.accept(pytoken.KwAnd) {
		op.Values = append(op.Values, p.parseNot())
	}
	return op
}

func (p *parser) parseNot() pyast.Expr {
	if p.at(pytoken.KwNot) {
		tok := p.next()
		return &pyast.UnaryOp{OpPos: tok.Pos, Op: pytoken.KwNot, Operand: p.parseNot()}
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() pyast.Expr {
	left := p.parseBitOr()
	var ops []pyast.CompareOp
	var comparators []pyast.Expr
	for {
		var op pyast.CompareOp
		switch p.cur().Kind {
		case pytoken.LT, pytoken.GT, pytoken.LE, pytoken.GE, pytoken.EQ, pytoken.NE:
			op.Kind = p.next().Kind
		case pytoken.KwIn:
			p.next()
			op.Kind = pytoken.KwIn
		case pytoken.KwIs:
			p.next()
			op.Kind = pytoken.KwIs
			if p.accept(pytoken.KwNot) {
				op.Not = true
			}
		case pytoken.KwNot:
			if p.peekKind(1) != pytoken.KwIn {
				p.errorf("expected 'in' after 'not' in comparison")
			}
			p.next()
			p.next()
			op.Kind = pytoken.KwIn
			op.Not = true
		default:
			if len(ops) == 0 {
				return left
			}
			return &pyast.Compare{Left: left, Ops: ops, Comparators: comparators}
		}
		ops = append(ops, op)
		comparators = append(comparators, p.parseBitOr())
	}
}

// Binary operator precedence climbing for | ^ & << >> + - * / // % @.
func (p *parser) parseBitOr() pyast.Expr {
	return p.parseBinary(0)
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]pytoken.Kind{
	{pytoken.PIPE},
	{pytoken.CARET},
	{pytoken.AMPER},
	{pytoken.LSHIFT, pytoken.RSHIFT},
	{pytoken.PLUS, pytoken.MINUS},
	{pytoken.STAR, pytoken.SLASH, pytoken.DOUBLESLASH, pytoken.PERCENT, pytoken.AT},
}

func (p *parser) parseBinary(level int) pyast.Expr {
	if level == len(binLevels) {
		return p.parseUnary()
	}
	e := p.parseBinary(level + 1)
	for contains(binLevels[level], p.cur().Kind) {
		op := p.next().Kind
		right := p.parseBinary(level + 1)
		e = &pyast.BinOp{Left: e, Op: op, Right: right}
	}
	return e
}

func contains(ks []pytoken.Kind, k pytoken.Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() pyast.Expr {
	switch p.cur().Kind {
	case pytoken.PLUS, pytoken.MINUS, pytoken.TILDE:
		tok := p.next()
		return &pyast.UnaryOp{OpPos: tok.Pos, Op: tok.Kind, Operand: p.parseUnary()}
	}
	return p.parsePower()
}

func (p *parser) parsePower() pyast.Expr {
	e := p.parseAwait()
	if p.accept(pytoken.DOUBLESTAR) {
		// ** is right-associative and binds tighter than unary on the right.
		return &pyast.BinOp{Left: e, Op: pytoken.DOUBLESTAR, Right: p.parseUnary()}
	}
	return e
}

func (p *parser) parseAwait() pyast.Expr {
	if p.at(pytoken.KwAwait) {
		tok := p.next()
		return &pyast.Await{AwaitPos: tok.Pos, Value: p.parseAwait()}
	}
	return p.parsePostfix(p.parseAtom())
}

// parsePostfix applies call, attribute, and subscript suffixes to an atom.
func (p *parser) parsePostfix(e pyast.Expr) pyast.Expr {
	for {
		switch p.cur().Kind {
		case pytoken.LPAREN:
			p.next()
			args, kws := p.parseCallArgs()
			p.expect(pytoken.RPAREN)
			e = &pyast.Call{Func: e, Args: args, Keywords: kws}
		case pytoken.DOT:
			p.next()
			nm := p.expectNameLike()
			e = &pyast.Attribute{Value: e, Attr: nm.Lit, AttrPos: nm.Pos}
		case pytoken.LBRACKET:
			p.next()
			idx := p.parseSubscriptIndex()
			p.expect(pytoken.RBRACKET)
			e = &pyast.Subscript{Value: e, Index: idx}
		default:
			return e
		}
	}
}

// expectNameLike accepts a NAME or a keyword used as an attribute (seen in
// the wild for e.g. `obj.import_`-style APIs that shadow soft keywords).
func (p *parser) expectNameLike() pytoken.Token {
	if p.at(pytoken.NAME) || p.cur().Kind.IsKeyword() {
		return p.next()
	}
	p.errorf("expected attribute name, found %s", p.cur())
	return pytoken.Token{}
}

// parseSubscriptIndex parses `a`, `a:b`, `a:b:c`, or a tuple of these.
func (p *parser) parseSubscriptIndex() pyast.Expr {
	first := p.parseSliceItem()
	if !p.at(pytoken.COMMA) {
		return first
	}
	tup := &pyast.Tuple{TuplePos: first.Pos(), Elts: []pyast.Expr{first}}
	for p.accept(pytoken.COMMA) {
		if p.at(pytoken.RBRACKET) {
			break
		}
		tup.Elts = append(tup.Elts, p.parseSliceItem())
	}
	return tup
}

func (p *parser) parseSliceItem() pyast.Expr {
	var lo pyast.Expr
	if !p.at(pytoken.COLON) {
		lo = p.parseExpr()
		if !p.at(pytoken.COLON) {
			return lo
		}
	}
	colon := p.expect(pytoken.COLON)
	sl := &pyast.Slice{ColonPos: colon.Pos, Lo: lo}
	if !p.at(pytoken.COLON) && !p.at(pytoken.RBRACKET) && !p.at(pytoken.COMMA) {
		sl.Hi = p.parseExpr()
	}
	if p.accept(pytoken.COLON) {
		if !p.at(pytoken.RBRACKET) && !p.at(pytoken.COMMA) {
			sl.Step = p.parseExpr()
		}
	}
	return sl
}

// parseCallArgs parses positional and keyword arguments up to the closing
// paren (not consumed). `*x` becomes a Starred positional; `**x` becomes a
// Keyword with empty name.
func (p *parser) parseCallArgs() ([]pyast.Expr, []*pyast.Keyword) {
	var args []pyast.Expr
	var kws []*pyast.Keyword
	for !p.at(pytoken.RPAREN) && !p.at(pytoken.EOF) {
		switch {
		case p.at(pytoken.DOUBLESTAR):
			pos := p.next().Pos
			kws = append(kws, &pyast.Keyword{NamePos: pos, Value: p.parseExpr()})
		case p.at(pytoken.STAR):
			pos := p.next().Pos
			args = append(args, &pyast.Starred{StarPos: pos, Value: p.parseExpr()})
		case p.at(pytoken.NAME) && p.peekKind(1) == pytoken.ASSIGN:
			nm := p.next()
			p.next() // =
			kws = append(kws, &pyast.Keyword{NamePos: nm.Pos, Name: nm.Lit, Value: p.parseExpr()})
		default:
			arg := p.parseNamedExprOrExpr()
			// Generator expression as sole argument: f(x for x in y)
			if p.at(pytoken.KwFor) || p.at(pytoken.KwAsync) && p.peekKind(1) == pytoken.KwFor {
				comp := &pyast.Comp{CompPos: arg.Pos(), Kind: pyast.GeneratorExp, Elt: arg}
				comp.Clauses = p.parseCompClauses()
				arg = comp
			}
			args = append(args, arg)
		}
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
	return args, kws
}

func (p *parser) parseYield() pyast.Expr {
	tok := p.expect(pytoken.KwYield)
	y := &pyast.Yield{YieldPos: tok.Pos}
	if p.accept(pytoken.KwFrom) {
		y.From = true
		y.Value = p.parseExpr()
		return y
	}
	if !p.at(pytoken.NEWLINE) && !p.at(pytoken.RPAREN) && !p.at(pytoken.RBRACKET) &&
		!p.at(pytoken.RBRACE) && !p.at(pytoken.SEMI) && !p.at(pytoken.EOF) && !p.at(pytoken.DEDENT) {
		y.Value = p.parseExprList()
	}
	return y
}

// ---------------------------------------------------------------------------
// Atoms

func (p *parser) parseAtom() pyast.Expr {
	tok := p.cur()
	switch tok.Kind {
	case pytoken.NAME:
		p.next()
		return &pyast.Name{NamePos: tok.Pos, Ident: tok.Lit}
	case pytoken.NUMBER:
		p.next()
		return &pyast.Num{NumPos: tok.Pos, Lit: tok.Lit}
	case pytoken.STRING:
		return p.parseStringConcat()
	case pytoken.KwTrue, pytoken.KwFalse, pytoken.KwNone:
		p.next()
		return &pyast.NameConst{ConstPos: tok.Pos, Value: tok.Kind.String()}
	case pytoken.ELLIPSIS:
		p.next()
		return &pyast.EllipsisLit{DotsPos: tok.Pos}
	case pytoken.LPAREN:
		return p.parseParenForm()
	case pytoken.LBRACKET:
		return p.parseListForm()
	case pytoken.LBRACE:
		return p.parseBraceForm()
	case pytoken.KwYield:
		return p.parseYield()
	case pytoken.KwLambda:
		return p.parseLambda()
	case pytoken.KwAwait:
		return p.parseAwait()
	case pytoken.KwNot:
		return p.parseNot()
	case pytoken.PLUS, pytoken.MINUS, pytoken.TILDE:
		return p.parseUnary()
	default:
		p.errorf("unexpected %s in expression", tok)
		return nil
	}
}

// parseStringConcat handles implicit adjacent-literal concatenation and
// f-string interpolation: if any part is an f-string with {…} values, the
// result is a JoinedStr carrying the parsed interpolations.
func (p *parser) parseStringConcat() pyast.Expr {
	first := p.next()
	toks := []pytoken.Token{first}
	lit := first.Lit
	for p.at(pytoken.STRING) {
		tok := p.next()
		toks = append(toks, tok)
		lit += tok.Lit
	}
	var values []pyast.Expr
	for _, tok := range toks {
		if js, ok := parseFString(tok).(*pyast.JoinedStr); ok {
			values = append(values, js.Values...)
		}
	}
	if len(values) > 0 {
		return &pyast.JoinedStr{StrPos: first.Pos, Lit: lit, Values: values}
	}
	return &pyast.Str{StrPos: first.Pos, Lit: lit}
}

// parseParenForm parses `()`, a parenthesized expression, a tuple, a
// generator expression, or a parenthesized yield.
func (p *parser) parseParenForm() pyast.Expr {
	open := p.expect(pytoken.LPAREN)
	if p.at(pytoken.RPAREN) {
		p.next()
		return &pyast.Tuple{TuplePos: open.Pos}
	}
	if p.at(pytoken.KwYield) {
		y := p.parseYield()
		p.expect(pytoken.RPAREN)
		return y
	}
	first := p.parseStarOrNamedExpr()
	switch {
	case p.at(pytoken.KwFor) || p.at(pytoken.KwAsync):
		comp := &pyast.Comp{CompPos: open.Pos, Kind: pyast.GeneratorExp, Elt: first}
		comp.Clauses = p.parseCompClauses()
		p.expect(pytoken.RPAREN)
		return comp
	case p.at(pytoken.COMMA):
		tup := &pyast.Tuple{TuplePos: open.Pos, Elts: []pyast.Expr{first}}
		for p.accept(pytoken.COMMA) {
			if p.at(pytoken.RPAREN) {
				break
			}
			tup.Elts = append(tup.Elts, p.parseStarOrNamedExpr())
		}
		p.expect(pytoken.RPAREN)
		return tup
	default:
		p.expect(pytoken.RPAREN)
		return first
	}
}

func (p *parser) parseStarOrNamedExpr() pyast.Expr {
	if p.at(pytoken.STAR) {
		tok := p.next()
		return &pyast.Starred{StarPos: tok.Pos, Value: p.parseExpr()}
	}
	return p.parseNamedExprOrExpr()
}

func (p *parser) parseListForm() pyast.Expr {
	open := p.expect(pytoken.LBRACKET)
	if p.at(pytoken.RBRACKET) {
		p.next()
		return &pyast.List{ListPos: open.Pos}
	}
	first := p.parseStarOrNamedExpr()
	if p.at(pytoken.KwFor) || p.at(pytoken.KwAsync) {
		comp := &pyast.Comp{CompPos: open.Pos, Kind: pyast.ListComp, Elt: first}
		comp.Clauses = p.parseCompClauses()
		p.expect(pytoken.RBRACKET)
		return comp
	}
	lst := &pyast.List{ListPos: open.Pos, Elts: []pyast.Expr{first}}
	for p.accept(pytoken.COMMA) {
		if p.at(pytoken.RBRACKET) {
			break
		}
		lst.Elts = append(lst.Elts, p.parseStarOrNamedExpr())
	}
	p.expect(pytoken.RBRACKET)
	return lst
}

// parseBraceForm parses dict and set displays and comprehensions.
func (p *parser) parseBraceForm() pyast.Expr {
	open := p.expect(pytoken.LBRACE)
	if p.at(pytoken.RBRACE) {
		p.next()
		return &pyast.Dict{DictPos: open.Pos}
	}
	if p.at(pytoken.DOUBLESTAR) {
		// {**a, ...} is always a dict.
		d := &pyast.Dict{DictPos: open.Pos}
		p.parseDictItems(d)
		p.expect(pytoken.RBRACE)
		return d
	}
	first := p.parseStarOrNamedExpr()
	if p.accept(pytoken.COLON) {
		value := p.parseExpr()
		if p.at(pytoken.KwFor) || p.at(pytoken.KwAsync) {
			comp := &pyast.Comp{CompPos: open.Pos, Kind: pyast.DictComp, Elt: first, Value: value}
			comp.Clauses = p.parseCompClauses()
			p.expect(pytoken.RBRACE)
			return comp
		}
		d := &pyast.Dict{DictPos: open.Pos, Keys: []pyast.Expr{first}, Values: []pyast.Expr{value}}
		if p.accept(pytoken.COMMA) {
			p.parseDictItems(d)
		}
		p.expect(pytoken.RBRACE)
		return d
	}
	if p.at(pytoken.KwFor) || p.at(pytoken.KwAsync) {
		comp := &pyast.Comp{CompPos: open.Pos, Kind: pyast.SetComp, Elt: first}
		comp.Clauses = p.parseCompClauses()
		p.expect(pytoken.RBRACE)
		return comp
	}
	set := &pyast.Set{SetPos: open.Pos, Elts: []pyast.Expr{first}}
	for p.accept(pytoken.COMMA) {
		if p.at(pytoken.RBRACE) {
			break
		}
		set.Elts = append(set.Elts, p.parseStarOrNamedExpr())
	}
	p.expect(pytoken.RBRACE)
	return set
}

func (p *parser) parseDictItems(d *pyast.Dict) {
	for !p.at(pytoken.RBRACE) && !p.at(pytoken.EOF) {
		if p.at(pytoken.DOUBLESTAR) {
			p.next()
			d.Keys = append(d.Keys, nil)
			d.Values = append(d.Values, p.parseExpr())
		} else {
			key := p.parseExpr()
			p.expect(pytoken.COLON)
			d.Keys = append(d.Keys, key)
			d.Values = append(d.Values, p.parseExpr())
		}
		if !p.accept(pytoken.COMMA) {
			break
		}
	}
}

func (p *parser) parseCompClauses() []*pyast.CompClause {
	var clauses []*pyast.CompClause
	for {
		async := false
		if p.at(pytoken.KwAsync) && p.peekKind(1) == pytoken.KwFor {
			p.next()
			async = true
		}
		if !p.accept(pytoken.KwFor) {
			break
		}
		c := &pyast.CompClause{Async: async}
		c.Target = p.parseTargetList()
		p.expect(pytoken.KwIn)
		c.Iter = p.parseOr()
		for p.accept(pytoken.KwIf) {
			c.Ifs = append(c.Ifs, p.parseOr())
		}
		clauses = append(clauses, c)
	}
	return clauses
}
