package pyparse

import (
	"reflect"
	"testing"

	"seldon/internal/pyast"
)

func TestFStringFragments(t *testing.T) {
	cases := []struct {
		lit  string
		want []string
	}{
		{`f"hello {name}"`, []string{"name"}},
		{`f"{a} and {b}"`, []string{"a", "b"}},
		{`f"none here"`, nil},
		{`f"escaped {{brace}} only"`, nil},
		{`f"{x:>10}"`, []string{"x"}},
		{`f"{x!r}"`, []string{"x"}},
		{`f"{x!r:>10}"`, []string{"x"}},
		{`f"{d['k']}"`, []string{"d['k']"}},
		{`f"{f(a, b)}"`, []string{"f(a, b)"}},
		{`f"{a != b}"`, []string{"a != b"}},
		{`f"{ {1: 2}[1] }"`, []string{"{1: 2}[1]"}},
		{`F'{x}'`, []string{"x"}},
		{`rf'{x}'`, []string{"x"}},
		{`f"""{x}"""`, []string{"x"}},
		{`'not an fstring {x}'`, nil},
		{`f"{unterminated"`, nil},
	}
	for _, c := range cases {
		got := fstringFragments(c.lit)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("fragments(%s) = %q, want %q", c.lit, got, c.want)
		}
	}
}

func TestFStringParsedAsJoinedStr(t *testing.T) {
	e := exprOf(t, `f"SELECT * FROM t WHERE k = {term}"`)
	js, ok := e.(*pyast.JoinedStr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(js.Values) != 1 {
		t.Fatalf("values = %d", len(js.Values))
	}
	if pyast.Unparse(js.Values[0]) != "term" {
		t.Errorf("value = %q", pyast.Unparse(js.Values[0]))
	}
}

func TestPlainFStringStaysStr(t *testing.T) {
	e := exprOf(t, `f"static text"`)
	if _, ok := e.(*pyast.Str); !ok {
		t.Fatalf("got %T, want Str", e)
	}
}

func TestFStringComplexInterpolations(t *testing.T) {
	e := exprOf(t, `f"{user.name}: {items[0]} ({len(items)} total)"`)
	js, ok := e.(*pyast.JoinedStr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	var reps []string
	for _, v := range js.Values {
		reps = append(reps, pyast.Unparse(v))
	}
	want := []string{"user.name", "items[0]", "len(items)"}
	if !reflect.DeepEqual(reps, want) {
		t.Errorf("values = %v, want %v", reps, want)
	}
}

func TestConcatenatedFStrings(t *testing.T) {
	e := exprOf(t, `f"{a}" f"{b}" "tail"`)
	js, ok := e.(*pyast.JoinedStr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(js.Values) != 2 {
		t.Errorf("values = %d, want 2", len(js.Values))
	}
}

func TestFStringBadFragmentIgnored(t *testing.T) {
	// A syntactically broken interpolation must not poison the parse.
	mod := mustParse(t, `x = f"{]broken}"`+"\n")
	if len(mod.Body) != 1 {
		t.Fatalf("statements = %d", len(mod.Body))
	}
}
