package pyparse

import (
	"strings"
	"testing"

	"seldon/internal/pytoken"
)

// benchSource is a realistic handler-module shape.
var benchSource = strings.Repeat(`from flask import request, Response
import os

@app.route('/search')
def search(limit=10, *args, **kwargs):
    term = request.args.get('q')
    rows = [normalize(r) for r in db.query(term) if r.ok]
    try:
        payload = {'rows': rows, 'n': len(rows)}
    except ValueError as e:
        payload = {}
    return Response(render(payload))

class View(MethodView):
    def post(self):
        return self.render(request.form.get('x'))
`, 8)

func BenchmarkScan(b *testing.B) {
	b.SetBytes(int64(len(benchSource)))
	for i := 0; i < b.N; i++ {
		sc := pytoken.NewScanner("bench.py", benchSource)
		for sc.Scan().Kind != pytoken.EOF {
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSource)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench.py", benchSource); err != nil {
			b.Fatal(err)
		}
	}
}
