package corpus

// Slice returns slice i of n of the corpus, partitioned by project:
// the sorted project list is cut into contiguous blocks, and a slice
// carries every file and ground-truth flow of its projects (Truth is
// shared — it describes the API catalog, not the file set). Slices are
// deterministic, disjoint, and exhaustive: concatenating slices 0..n-1
// reproduces the corpus file-for-file and flow-for-flow, in order.
//
// Because project names prefix file names, a contiguous block of sorted
// projects is also a contiguous block of the corpus's sorted file-name
// order — the property distributed learning needs for a coordinator's
// merge to be byte-identical to a single-process run (see
// core.SliceNames for the same contract over raw name lists).
func (c *Corpus) Slice(n, i int) *Corpus {
	out := &Corpus{Truth: c.Truth}
	if n <= 0 || i < 0 || i >= n {
		return out
	}
	projects := c.Projects()
	lo := i * len(projects) / n
	hi := (i + 1) * len(projects) / n
	mine := make(map[string]bool, hi-lo)
	for _, p := range projects[lo:hi] {
		mine[p] = true
	}
	for _, f := range c.Files {
		if mine[f.Project] {
			out.Files = append(out.Files, f)
		}
	}
	for _, fl := range c.Flows {
		if mine[fl.Project] {
			out.Flows = append(out.Flows, fl)
		}
	}
	return out
}
