package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Config controls corpus generation. Zero values select defaults sized for
// tests; benchmarks pass larger file counts.
type Config struct {
	Files           int     // total files; default 200
	ProjectSize     int     // files per project; default 8
	Seed            int64   // RNG seed; default 1
	SanitizeRate    float64 // fraction of flows sanitized; default 0.65
	ExploitableRate float64 // fraction of unsanitized flows exploitable; default 0.6
	WrongParamRate  float64 // fraction of flows into a benign parameter; default 0.08
	NoiseRate       float64 // fraction of pure-noise files; default 0.35
	// PassThroughRate inserts a role-less shaping call (e.g. titlecase)
	// between source and sink on unsanitized flows; default 0.55. Real
	// code rarely pipes raw input straight into a sink, and these
	// pass-through calls are what the learner sometimes mislabels as
	// sanitizers (the paper's §9 failure mode and its 58% sanitizer
	// precision).
	PassThroughRate float64
}

func (c Config) withDefaults() Config {
	if c.Files == 0 {
		c.Files = 200
	}
	if c.ProjectSize == 0 {
		c.ProjectSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SanitizeRate == 0 {
		c.SanitizeRate = 0.65
	}
	if c.ExploitableRate == 0 {
		c.ExploitableRate = 0.6
	}
	if c.WrongParamRate == 0 {
		c.WrongParamRate = 0.08
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.35
	}
	if c.PassThroughRate == 0 {
		c.PassThroughRate = 0.55
	}
	return c
}

// File is one generated source file.
type File struct {
	Name    string
	Project string
	Source  string
}

// Flow records the ground truth of one generated source→sink flow.
type Flow struct {
	File         string
	Project      string
	SourceRep    string
	SinkRep      string
	SanitizerRep string // "" when unsanitized
	Sanitized    bool
	// Exploitable marks unsanitized flows an attacker could actually
	// exploit (the rest model the paper's "vulnerable flow, but no bug").
	Exploitable bool
	// WrongParam marks flows whose tainted value reaches a benign
	// parameter of a true sink (Table 6's "flows into wrong parameter").
	WrongParam bool
	Class      string
}

// Corpus is a generated dataset.
type Corpus struct {
	Files []File
	Flows []Flow
	Truth *Truth
}

// FileMap returns name → source for all files.
func (c *Corpus) FileMap() map[string]string {
	m := make(map[string]string, len(c.Files))
	for _, f := range c.Files {
		m[f.Name] = f.Source
	}
	return m
}

// Projects returns the sorted list of project names.
func (c *Corpus) Projects() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range c.Files {
		if !seen[f.Project] {
			seen[f.Project] = true
			out = append(out, f.Project)
		}
	}
	sort.Strings(out)
	return out
}

// ProjectFiles returns name → source for one project.
func (c *Corpus) ProjectFiles(project string) map[string]string {
	m := make(map[string]string)
	for _, f := range c.Files {
		if f.Project == project {
			m[f.Name] = f.Source
		}
	}
	return m
}

// Generate produces a deterministic corpus for the configuration.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng, out: &Corpus{Truth: NewTruth()}}
	nProjects := (cfg.Files + cfg.ProjectSize - 1) / cfg.ProjectSize
	fileNo := 0
	for p := 0; p < nProjects && fileNo < cfg.Files; p++ {
		project := fmt.Sprintf("proj%03d", p)
		for i := 0; i < cfg.ProjectSize && fileNo < cfg.Files; i++ {
			var f File
			if rng.Float64() < cfg.NoiseRate {
				f = g.noiseFile(project, fileNo)
			} else {
				f = g.handlerFile(project, fileNo)
			}
			g.out.Files = append(g.out.Files, f)
			fileNo++
		}
	}
	return g.out
}

type generator struct {
	cfg Config
	rng *rand.Rand
	out *Corpus
}

func (g *generator) pick(apis []apiTemplate) apiTemplate {
	return apis[g.rng.Intn(len(apis))]
}

// handlerFile emits a Flask-style view module with 2-4 handlers.
func (g *generator) handlerFile(project string, n int) File {
	name := fmt.Sprintf("%s/views_%d.py", project, n)
	b := &fileBuilder{imports: map[string]bool{
		"from flask import Flask": true,
	}}
	b.body.WriteString("app = Flask(__name__)\n")

	handlers := 2 + g.rng.Intn(3)
	for h := 0; h < handlers; h++ {
		switch g.rng.Intn(10) {
		case 0, 1:
			g.wrapperHandler(b, name, project, h)
		case 2:
			g.classViewHandler(b, name, project, h)
		case 3:
			g.sqlChainHandler(b, name, project, h)
		case 4, 5:
			g.djangoHandler(b, name, project, h)
		default:
			g.directHandler(b, name, project, h)
		}
	}
	// View modules also carry ordinary helpers, as real ones do.
	helper := sharedHelperNames[g.rng.Intn(len(sharedHelperNames))]
	api := g.pick(noneAPIs)
	b.need(api.imports)
	fmt.Fprintf(&b.body, "\ndef %s(value, options=None):\n", helper)
	fmt.Fprintf(&b.body, "    shaped = %s\n", instantiate(api.code, "value"))
	fmt.Fprintf(&b.body, "    return shaped\n")
	return File{Name: name, Project: project, Source: b.render()}
}

type fileBuilder struct {
	imports map[string]bool
	body    strings.Builder
}

func (b *fileBuilder) need(imports []string) {
	for _, im := range imports {
		b.imports[im] = true
	}
}

func (b *fileBuilder) render() string {
	ims := make([]string, 0, len(b.imports))
	for im := range b.imports {
		ims = append(ims, im)
	}
	sort.Strings(ims)
	return strings.Join(ims, "\n") + "\n\n" + b.body.String()
}

// flowPlan rolls the dice for one source→sink flow and records its truth.
func (g *generator) flowPlan(file, project string, class vulnClass,
	src, snk apiTemplate) (san apiTemplate, flow Flow) {
	sanitized := g.rng.Float64() < g.cfg.SanitizeRate
	sans := sanitizersFor(class)
	if len(sans) == 0 {
		sanitized = false
	}
	flow = Flow{
		File: file, Project: project,
		SourceRep: src.rep, SinkRep: snk.rep,
		Sanitized: sanitized, Class: string(class),
	}
	if sanitized {
		san = sans[g.rng.Intn(len(sans))]
		flow.SanitizerRep = san.rep
	} else {
		flow.Exploitable = g.rng.Float64() < g.cfg.ExploitableRate
	}
	return san, flow
}

// directHandler is the bread-and-butter shape: source, optional sanitizer,
// noise, sink.
func (g *generator) directHandler(b *fileBuilder, file, project string, h int) {
	class := allClasses[g.rng.Intn(len(allClasses))]
	src := g.pick(sourceAPIs)
	snks := sinksFor(class)
	snk := snks[g.rng.Intn(len(snks))]

	wrongParam := g.rng.Float64() < g.cfg.WrongParamRate
	san, flow := g.flowPlan(file, project, class, src, snk)
	if wrongParam {
		flow.Sanitized = false
		flow.SanitizerRep = ""
		flow.Exploitable = false
		flow.WrongParam = true
	}
	g.out.Flows = append(g.out.Flows, flow)

	b.need(src.imports)
	b.need(snk.imports)
	b.body.WriteString("\n" + "@" + "app.route")
	fmt.Fprintf(&b.body, "('/h%d')\ndef handler_%d_%d():\n", h, g.rng.Intn(1<<30), h)
	fmt.Fprintf(&b.body, "    val = %s\n", instantiate(src.code, fmt.Sprintf("p%d", h)))
	if flow.Sanitized {
		b.need(san.imports)
		fmt.Fprintf(&b.body, "    val = %s\n", instantiate(san.code, "val"))
	} else if g.rng.Float64() < g.cfg.PassThroughRate {
		g.passThrough(b, "    ", "val")
	}
	g.noiseStatements(b, 0+g.rng.Intn(3))
	if !flow.Exploitable && !flow.Sanitized && !wrongParam {
		// The paper's "vulnerable flow, but no bug": e.g. a text/plain
		// response cannot trigger XSS.
		b.body.WriteString("    content_type = 'text/plain'\n")
	}
	if wrongParam {
		fmt.Fprintf(&b.body, "    out = %s\n", instantiateWrongParam(snk.code))
	} else {
		fmt.Fprintf(&b.body, "    out = %s\n", instantiate(snk.code, "val"))
	}
	b.body.WriteString("    return out\n")
}

// wrapperHandler reads input through a local helper function, exercising
// same-file call linking.
func (g *generator) wrapperHandler(b *fileBuilder, file, project string, h int) {
	class := allClasses[g.rng.Intn(len(allClasses))]
	src := g.pick(sourceAPIs)
	snks := sinksFor(class)
	snk := snks[g.rng.Intn(len(snks))]
	san, flow := g.flowPlan(file, project, class, src, snk)
	g.out.Flows = append(g.out.Flows, flow)

	b.need(src.imports)
	b.need(snk.imports)
	fmt.Fprintf(&b.body, "\ndef read_input_%d():\n    return %s\n",
		h, instantiate(src.code, fmt.Sprintf("w%d", h)))
	b.body.WriteString("\n" + "@" + "app.route")
	fmt.Fprintf(&b.body, "('/w%d')\ndef wrapped_%d():\n", h, h)
	fmt.Fprintf(&b.body, "    data = read_input_%d()\n", h)
	if flow.Sanitized {
		b.need(san.imports)
		fmt.Fprintf(&b.body, "    data = %s\n", instantiate(san.code, "data"))
	} else if g.rng.Float64() < g.cfg.PassThroughRate {
		g.passThrough(b, "    ", "data")
	}
	if !flow.Exploitable && !flow.Sanitized {
		b.body.WriteString("    content_type = 'text/plain'\n")
	}
	fmt.Fprintf(&b.body, "    return %s\n", instantiate(snk.code, "data"))
}

// classViewHandler emits a MethodView subclass, exercising class-context
// representations and backoff.
func (g *generator) classViewHandler(b *fileBuilder, file, project string, h int) {
	class := allClasses[g.rng.Intn(len(allClasses))]
	src := g.pick(sourceAPIs)
	snks := sinksFor(class)
	snk := snks[g.rng.Intn(len(snks))]
	san, flow := g.flowPlan(file, project, class, src, snk)
	g.out.Flows = append(g.out.Flows, flow)

	b.need(src.imports)
	b.need(snk.imports)
	b.need([]string{"from flask.views import MethodView"})
	fmt.Fprintf(&b.body, "\nclass View%d(MethodView):\n    def post(self):\n", h)
	fmt.Fprintf(&b.body, "        item = %s\n", instantiate(src.code, fmt.Sprintf("c%d", h)))
	if flow.Sanitized {
		b.need(san.imports)
		fmt.Fprintf(&b.body, "        item = %s\n", instantiate(san.code, "item"))
	} else if g.rng.Float64() < g.cfg.PassThroughRate {
		g.passThrough(b, "        ", "item")
	}
	if !flow.Exploitable && !flow.Sanitized {
		b.body.WriteString("        content_type = 'text/plain'\n")
	}
	fmt.Fprintf(&b.body, "        return %s\n", instantiate(snk.code, "item"))
}

// djangoHandler emits a Django-style view taking the request object as a
// formal parameter; its source events are parameter-rooted, exercising
// the backoff between view_name(param request).GET.get() and the shared
// request.GET.get() representation.
func (g *generator) djangoHandler(b *fileBuilder, file, project string, h int) {
	class := allClasses[g.rng.Intn(len(allClasses))]
	src := djangoSourceAPIs[g.rng.Intn(len(djangoSourceAPIs))]
	snks := sinksFor(class)
	snk := snks[g.rng.Intn(len(snks))]
	san, flow := g.flowPlan(file, project, class, src, snk)
	g.out.Flows = append(g.out.Flows, flow)

	viewName := djangoViewNames[g.rng.Intn(len(djangoViewNames))]
	b.need(snk.imports)
	fmt.Fprintf(&b.body, "\ndef %s_%d(request):\n", viewName, h)
	fmt.Fprintf(&b.body, "    field = %s\n", instantiate(src.code, fmt.Sprintf("d%d", h)))
	if flow.Sanitized {
		b.need(san.imports)
		fmt.Fprintf(&b.body, "    field = %s\n", instantiate(san.code, "field"))
	} else if g.rng.Float64() < g.cfg.PassThroughRate {
		g.passThrough(b, "    ", "field")
	}
	if !flow.Exploitable && !flow.Sanitized {
		b.body.WriteString("    content_type = 'text/plain'\n")
	}
	fmt.Fprintf(&b.body, "    return %s\n", instantiate(snk.code, "field"))
}

// sqlChainHandler uses the seeded MySQLdb chained-call sink.
func (g *generator) sqlChainHandler(b *fileBuilder, file, project string, h int) {
	src := g.pick(sourceAPIs)
	sanitized := g.rng.Float64() < g.cfg.SanitizeRate
	flow := Flow{
		File: file, Project: project,
		SourceRep: src.rep, SinkRep: "MySQLdb.connect().cursor().execute()",
		Sanitized: sanitized, Class: string(classSQL),
	}
	var san apiTemplate
	if sanitized {
		sans := sanitizersFor(classSQL)
		san = sans[g.rng.Intn(len(sans))]
		flow.SanitizerRep = san.rep
	} else {
		flow.Exploitable = g.rng.Float64() < g.cfg.ExploitableRate
	}
	g.out.Flows = append(g.out.Flows, flow)

	b.need(src.imports)
	b.need([]string{"import MySQLdb"})
	b.body.WriteString("\n" + "@" + "app.route")
	fmt.Fprintf(&b.body, "('/q%d')\ndef query_%d():\n", h, h)
	fmt.Fprintf(&b.body, "    term = %s\n", instantiate(src.code, fmt.Sprintf("q%d", h)))
	if sanitized {
		b.need(san.imports)
		fmt.Fprintf(&b.body, "    term = %s\n", instantiate(san.code, "term"))
	} else if g.rng.Float64() < g.cfg.PassThroughRate {
		g.passThrough(b, "    ", "term")
	}
	b.body.WriteString("    conn = MySQLdb.connect()\n    cur = conn.cursor()\n")
	if !flow.Exploitable && !sanitized {
		b.body.WriteString("    content_type = 'text/plain'\n")
	}
	if g.rng.Intn(2) == 0 {
		// The classic f-string injection idiom.
		b.body.WriteString("    cur.execute(f\"SELECT * FROM t WHERE k = {term}\")\n")
	} else {
		b.body.WriteString("    cur.execute('SELECT * FROM t WHERE k = ' + term)\n")
	}
	b.body.WriteString("    return cur\n")
}

// passThrough pipes a variable through a role-less shaping call.
func (g *generator) passThrough(b *fileBuilder, indent, varName string) {
	api := g.pick(noneAPIs[:5]) // only the unary shaping calls
	b.need(api.imports)
	fmt.Fprintf(&b.body, "%s%s = %s\n", indent, varName, instantiate(api.code, varName))
}

// noiseStatements sprinkles irrelevant calls into a handler body.
func (g *generator) noiseStatements(b *fileBuilder, n int) {
	for i := 0; i < n; i++ {
		api := g.pick(noneAPIs)
		b.need(api.imports)
		fmt.Fprintf(&b.body, "    aux%d = %s\n", i, instantiate(api.code, "'x'"))
	}
}

// noiseFile emits a module with no security-relevant behaviour at all.
// Helper names come from a shared pool so that, like conventionally named
// helpers in real code, their parameter events repeat across files and
// survive the learner's frequency cutoff.
func (g *generator) noiseFile(project string, n int) File {
	name := fmt.Sprintf("%s/util_%d.py", project, n)
	b := &fileBuilder{imports: map[string]bool{"import mathx": true}}
	funcs := 3 + g.rng.Intn(4)
	used := map[string]bool{}
	for i := 0; i < funcs; i++ {
		helper := sharedHelperNames[g.rng.Intn(len(sharedHelperNames))]
		if used[helper] {
			continue
		}
		used[helper] = true
		api := g.pick(noneAPIs)
		api2 := g.pick(noneAPIs)
		b.need(api.imports)
		b.need(api2.imports)
		fmt.Fprintf(&b.body, "\ndef %s(value, options=None):\n", helper)
		fmt.Fprintf(&b.body, "    total = mathx.mean([1, 2])\n")
		fmt.Fprintf(&b.body, "    shaped = %s\n", instantiate(api.code, "value"))
		fmt.Fprintf(&b.body, "    extra = %s\n", instantiate(api2.code, "shaped"))
		fmt.Fprintf(&b.body, "    if options:\n        return extra\n    return total\n")
	}
	return File{Name: name, Project: project, Source: b.render()}
}

// instantiate substitutes the template argument when the template has a
// placeholder.
func instantiate(code, arg string) string {
	if strings.Contains(code, "%s") {
		return fmt.Sprintf(code, arg)
	}
	return code
}

// instantiateWrongParam routes the tainted value into a benign keyword
// parameter of the sink, keeping the dangerous positional argument safe.
func instantiateWrongParam(code string) string {
	open := strings.Index(code, "(")
	name := code[:open]
	return name + "('-safe-', timeout=val)"
}
