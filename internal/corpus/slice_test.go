package corpus

import (
	"sort"
	"testing"
)

// TestSlicePartition: for every slice count, the slices are disjoint,
// their union is exactly the whole corpus (files and flows), and each
// slice holds whole projects in sorted order — the property distributed
// learning's determinism rests on.
func TestSlicePartition(t *testing.T) {
	c := Generate(Config{Files: 50})
	whole := c.FileMap()

	for _, n := range []int{1, 2, 3, 5, 8} {
		gotFiles := map[string]string{}
		gotFlows := 0
		var order []string
		for i := 0; i < n; i++ {
			s := c.Slice(n, i)
			var names []string
			for _, f := range s.Files {
				if _, dup := gotFiles[f.Name]; dup {
					t.Fatalf("n=%d: file %q appears in two slices", n, f.Name)
				}
				gotFiles[f.Name] = f.Source
				names = append(names, f.Name)
			}
			// Workers analyze their slice in sorted name order; what must
			// hold globally is that those per-slice sorted manifests
			// concatenate into the corpus's global sorted order.
			sort.Strings(names)
			order = append(order, names...)
			gotFlows += len(s.Flows)
			for _, fl := range s.Flows {
				if _, ok := gotFiles[fl.File]; !ok {
					t.Errorf("n=%d slice %d: flow references %q outside the slice", n, i, fl.File)
				}
			}
		}
		if len(gotFiles) != len(whole) {
			t.Errorf("n=%d: union has %d files, corpus has %d", n, len(gotFiles), len(whole))
		}
		for name, src := range whole {
			if gotFiles[name] != src {
				t.Errorf("n=%d: file %q missing or altered in slice union", n, name)
			}
		}
		if gotFlows != len(c.Flows) {
			t.Errorf("n=%d: slices carry %d flows, corpus has %d", n, gotFlows, len(c.Flows))
		}
		// Concatenating slices 0..n-1 must reproduce the global sorted
		// file order (contiguity is what makes shard merges byte-stable).
		if !sort.StringsAreSorted(order) {
			t.Errorf("n=%d: concatenated slice manifests are not globally sorted", n)
		}
	}
}

func TestSliceWholeProjects(t *testing.T) {
	c := Generate(Config{Files: 40})
	projFiles := map[string]int{}
	for _, f := range c.Files {
		projFiles[f.Project]++
	}
	for _, n := range []int{2, 3} {
		for i := 0; i < n; i++ {
			s := c.Slice(n, i)
			seen := map[string]int{}
			for _, f := range s.Files {
				seen[f.Project]++
			}
			for p, cnt := range seen {
				if cnt != projFiles[p] {
					t.Errorf("n=%d slice %d: project %s split (%d of %d files)", n, i, p, cnt, projFiles[p])
				}
			}
		}
	}
}

func TestSliceDegenerate(t *testing.T) {
	c := Generate(Config{Files: 10})
	for _, tc := range [][2]int{{0, 0}, {2, -1}, {2, 2}, {2, 5}} {
		s := c.Slice(tc[0], tc[1])
		if s == nil {
			t.Fatalf("Slice(%d, %d) = nil, want empty corpus", tc[0], tc[1])
		}
		if len(s.Files) != 0 {
			t.Errorf("Slice(%d, %d) has %d files, want 0", tc[0], tc[1], len(s.Files))
		}
	}
	// More slices than projects: trailing slices are empty, union intact.
	n := len(c.Projects()) + 3
	total := 0
	for i := 0; i < n; i++ {
		total += len(c.Slice(n, i).Files)
	}
	if total != len(c.Files) {
		t.Errorf("%d slices over %d projects cover %d files, want %d",
			n, len(c.Projects()), total, len(c.Files))
	}
}
