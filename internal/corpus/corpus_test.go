package corpus

import (
	"strings"
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Files: 24, Seed: 7})
	b := Generate(Config{Files: 24, Seed: 7})
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("flow counts differ")
	}
	c := Generate(Config{Files: 24, Seed: 8})
	same := true
	for i := range a.Files {
		if i < len(c.Files) && a.Files[i] != c.Files[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratedFilesParse(t *testing.T) {
	c := Generate(Config{Files: 60, Seed: 3})
	if len(c.Files) != 60 {
		t.Fatalf("files = %d", len(c.Files))
	}
	for _, f := range c.Files {
		if _, err := pyparse.Parse(f.Name, f.Source); err != nil {
			t.Fatalf("generated file %s does not parse:\n%s\n%v", f.Name, f.Source, err)
		}
	}
}

func TestGeneratedFlowsAppearInGraphs(t *testing.T) {
	c := Generate(Config{Files: 40, Seed: 5})
	// For every recorded flow, the file's propagation graph must contain
	// an event with the flow's source rep and one with the sink rep.
	byFile := c.FileMap()
	graphs := make(map[string]*propgraph.Graph)
	for name, src := range byFile {
		g, err := dataflow.AnalyzeSource(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		graphs[name] = g
	}
	hasRep := func(g *propgraph.Graph, rep string) bool {
		for _, e := range g.Events {
			for _, r := range e.Reps() {
				if r == rep {
					return true
				}
			}
		}
		return false
	}
	for _, fl := range c.Flows {
		g := graphs[fl.File]
		if g == nil {
			t.Fatalf("flow references unknown file %s", fl.File)
		}
		if !hasRep(g, fl.SourceRep) {
			t.Errorf("%s: source rep %q missing from graph", fl.File, fl.SourceRep)
		}
		if !hasRep(g, fl.SinkRep) {
			t.Errorf("%s: sink rep %q missing from graph", fl.File, fl.SinkRep)
		}
		if fl.Sanitized && !hasRep(g, fl.SanitizerRep) {
			t.Errorf("%s: sanitizer rep %q missing from graph", fl.File, fl.SanitizerRep)
		}
	}
}

func TestTruthOracle(t *testing.T) {
	tr := NewTruth()
	if !tr.HasRole("flask.request.args.get()", propgraph.Source) {
		t.Error("args.get should be a true source")
	}
	// Suffixes carry the role too.
	if !tr.HasRole("request.args.get()", propgraph.Source) {
		t.Error("suffix rep should be a true source")
	}
	if !tr.HasRole("htmlguard.scrub()", propgraph.Sanitizer) {
		t.Error("scrub should be a true sanitizer")
	}
	if tr.HasRole("textutil.titlecase()", propgraph.Source) {
		t.Error("noise API must have no role")
	}
	if !tr.Known("textutil.titlecase()") {
		t.Error("noise API should still be known")
	}
	if tr.Known("completely.made.up()") {
		t.Error("unknown rep must not be known")
	}
}

func TestSeedSplit(t *testing.T) {
	srcs, sans, snks := SeededReps()
	if len(srcs) == 0 || len(sans) == 0 || len(snks) == 0 {
		t.Fatal("empty seeded reps")
	}
	learnable := LearnableReps()
	if len(learnable) == 0 {
		t.Fatal("no learnable reps")
	}
	for rep := range learnable {
		for _, s := range srcs {
			if s == rep {
				t.Errorf("%s is both seeded and learnable", rep)
			}
		}
	}
	tr := NewTruth()
	for rep, role := range learnable {
		if !tr.HasRole(rep, role) {
			t.Errorf("learnable %s lacks its truth role", rep)
		}
	}
}

func TestExperimentSeed(t *testing.T) {
	s := ExperimentSeed()
	if !s.RolesOf("flask.request.form.get()").Has(propgraph.Source) {
		t.Error("seed missing qualified source")
	}
	if !s.RolesOf("request.form.get()").Has(propgraph.Source) {
		t.Error("seed missing suffix source")
	}
	if s.RolesOf("htmlguard.scrub()") != 0 {
		t.Error("learnable API leaked into seed")
	}
	if !s.Blacklisted("flask.Flask().route()") {
		t.Error("route decorator should be blacklisted")
	}
}

func TestFlowStatisticsRoughlyMatchRates(t *testing.T) {
	c := Generate(Config{Files: 300, Seed: 11, SanitizeRate: 0.65})
	san := 0
	for _, f := range c.Flows {
		if f.Sanitized {
			san++
		}
	}
	rate := float64(san) / float64(len(c.Flows))
	if rate < 0.5 || rate > 0.8 {
		t.Errorf("sanitized rate = %v, want ~0.65", rate)
	}
}

func TestProjectPartitioning(t *testing.T) {
	c := Generate(Config{Files: 32, ProjectSize: 8, Seed: 2})
	projects := c.Projects()
	if len(projects) != 4 {
		t.Fatalf("projects = %v", projects)
	}
	total := 0
	for _, p := range projects {
		files := c.ProjectFiles(p)
		total += len(files)
		for name := range files {
			if !strings.HasPrefix(name, p+"/") {
				t.Errorf("file %s not under project %s", name, p)
			}
		}
	}
	if total != 32 {
		t.Errorf("files across projects = %d", total)
	}
}

func TestWrongParamFlowsExist(t *testing.T) {
	c := Generate(Config{Files: 300, Seed: 13, WrongParamRate: 0.2})
	found := false
	for _, f := range c.Flows {
		if f.WrongParam {
			found = true
			if f.Sanitized || f.Exploitable {
				t.Error("wrong-param flow must be neither sanitized nor exploitable")
			}
		}
	}
	if !found {
		t.Error("no wrong-param flows generated")
	}
}

func TestDjangoHandlersGenerated(t *testing.T) {
	c := Generate(Config{Files: 200, Seed: 9})
	found := false
	for _, f := range c.Flows {
		if strings.HasPrefix(f.SourceRep, "request.") {
			found = true
		}
	}
	if !found {
		t.Fatal("no Django-style flows generated")
	}
	// Views must parse and produce param-rooted source events.
	tr := c.Truth
	if !tr.HasRole("request.GET.get()", propgraph.Source) {
		t.Error("request.GET.get() should be a true source")
	}
	if !tr.HasRole("profile_view_0(param request)", propgraph.Source) {
		t.Error("view request param should be a true source via pattern")
	}
	if !tr.HasRole("profile_view_0(param request).GET.get()", propgraph.Source) {
		t.Error("param-rooted read should be a true source via pattern")
	}
	if tr.HasRole("profile_view_0(param request)", propgraph.Sink) {
		t.Error("pattern must grant only the source role")
	}
}
