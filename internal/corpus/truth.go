package corpus

import (
	"strings"

	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Truth is the ground-truth role oracle for generated corpora. It knows
// the true roles of every catalog API — under its fully qualified
// representation and all dotted suffixes (backoff options) — so learned
// specifications can be scored exactly.
type Truth struct {
	roles map[string]propgraph.RoleSet
	// known marks every representation that belongs to the catalog at
	// all, including the role-less noise APIs.
	known map[string]bool
	// sourcePatterns are glob rules granting the source role to families
	// of representations, e.g. every Django view's request parameter.
	sourcePatterns []spec.Pattern
}

// NewTruth builds the oracle from the API catalog.
func NewTruth() *Truth {
	t := &Truth{
		roles: make(map[string]propgraph.RoleSet),
		known: make(map[string]bool),
	}
	add := func(rep string, role propgraph.Role, hasRole bool) {
		for _, suffix := range repSuffixes(rep) {
			t.known[suffix] = true
			if hasRole {
				t.roles[suffix] = t.roles[suffix].With(role)
			}
		}
	}
	for _, a := range sourceAPIs {
		add(a.rep, a.role, true)
	}
	for _, a := range djangoSourceAPIs {
		add(a.rep, a.role, true)
	}
	// Django's request parameter and anything read off it is
	// attacker-controlled, whichever view it appears in.
	t.sourcePatterns = append(t.sourcePatterns,
		spec.CompilePattern("*(param request)"),
		spec.CompilePattern("*(param request).*"),
		spec.CompilePattern("request.GET*"),
		spec.CompilePattern("request.POST*"),
		spec.CompilePattern("request.META*"),
		spec.CompilePattern("request.body*"),
	)
	for _, a := range sanitizerAPIs {
		add(a.rep, a.role, true)
	}
	for _, a := range sinkAPIs {
		add(a.rep, a.role, true)
	}
	for _, a := range noneAPIs {
		add(a.rep, 0, false)
	}
	// Prefixes of catalog sources that are themselves user-controlled
	// data (reading request.files['f'] is as attacker-controlled as
	// reading its .filename).
	add("flask.request.files['f']", propgraph.Source, true)
	add("bottle.request.query", propgraph.Source, true)
	return t
}

// repSuffixes returns the dotted suffixes of rep with at least two
// segments (plus rep itself), mirroring propgraph.SuffixReps.
func repSuffixes(rep string) []string {
	segs := strings.Split(rep, ".")
	if len(segs) <= 2 {
		return []string{rep}
	}
	out := make([]string, 0, len(segs)-1)
	for i := 0; i+2 <= len(segs); i++ {
		out = append(out, strings.Join(segs[i:], "."))
	}
	return out
}

// HasRole reports whether rep truly has the role.
func (t *Truth) HasRole(rep string, role propgraph.Role) bool {
	if t.roles[rep].Has(role) {
		return true
	}
	if role == propgraph.Source {
		for _, p := range t.sourcePatterns {
			if p.Match(rep) {
				return true
			}
		}
	}
	return false
}

// RolesOf returns the true roles of rep (0 when unknown or role-less).
func (t *Truth) RolesOf(rep string) propgraph.RoleSet { return t.roles[rep] }

// Known reports whether rep belongs to the catalog at all.
func (t *Truth) Known(rep string) bool { return t.known[rep] }

// SeededReps returns the catalog reps marked as present in the paper's
// seed, useful for building the experiment seed specification.
func SeededReps() (sources, sanitizers, sinks []string) {
	for _, a := range sourceAPIs {
		if a.seeded {
			sources = append(sources, a.rep)
		}
	}
	for _, a := range djangoSourceAPIs {
		if a.seeded {
			sources = append(sources, a.rep)
		}
	}
	for _, a := range sanitizerAPIs {
		if a.seeded {
			sanitizers = append(sanitizers, a.rep)
		}
	}
	for _, a := range sinkAPIs {
		if a.seeded {
			sinks = append(sinks, a.rep)
		}
	}
	sinks = append(sinks, "MySQLdb.connect().cursor().execute()")
	return sources, sanitizers, sinks
}

// LearnableReps returns the catalog reps NOT in the seed — the
// specifications a learner can newly discover.
func LearnableReps() map[string]propgraph.Role {
	out := make(map[string]propgraph.Role)
	for _, a := range sourceAPIs {
		if !a.seeded {
			out[a.rep] = a.role
		}
	}
	for _, a := range djangoSourceAPIs {
		if !a.seeded {
			out[a.rep] = a.role
		}
	}
	for _, a := range sanitizerAPIs {
		if !a.seeded {
			out[a.rep] = a.role
		}
	}
	for _, a := range sinkAPIs {
		if !a.seeded {
			out[a.rep] = a.role
		}
	}
	return out
}

// ExperimentSeed builds the seed specification used by the corpus
// experiments: the seeded catalog entries and their dotted suffixes (the
// paper's App. B seed likewise lists both request.form.get() and
// flask.request.form.get()), plus a small blacklist of framework noise in
// the spirit of the paper's 192 patterns.
func ExperimentSeed() *spec.Spec {
	s := spec.New()
	add := func(role propgraph.Role, rep string) {
		for _, suffix := range repSuffixes(rep) {
			s.Add(role, suffix)
		}
	}
	srcs, sans, snks := SeededReps()
	for _, r := range srcs {
		add(propgraph.Source, r)
	}
	for _, r := range sans {
		add(propgraph.Sanitizer, r)
	}
	for _, r := range snks {
		add(propgraph.Sink, r)
	}
	for _, pattern := range []string{
		"flask.Flask()*", "app.*", "*logging*", "mathx.*", "*.append()",
		"*.split()*", "*.keys()", "*.values()",
	} {
		s.AddBlacklist(pattern)
	}
	return s
}

// ArgSensitiveSeed is ExperimentSeed with every seeded sink restricted to
// its dangerous first argument — the §3.3 argument-sensitive extension.
// Every catalog sink receives the tainted value positionally, so the
// restriction suppresses exactly the "flows into wrong parameter" reports.
func ArgSensitiveSeed() *spec.Spec {
	s := ExperimentSeed()
	_, _, snks := SeededReps()
	for _, rep := range snks {
		for _, suffix := range repSuffixes(rep) {
			s.RestrictSinkArgs(suffix, 0)
		}
	}
	return s
}
