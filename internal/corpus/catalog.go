// Package corpus generates synthetic Python web-application datasets with
// known ground truth, substituting the paper's GitHub corpus (44,250
// web-application files). The generator emits Flask/Django/werkzeug-style
// request handlers, database access, file uploads, templating, wrapper
// functions, class-based views, and large volumes of security-irrelevant
// noise code. Every taint-relevant API is drawn from a catalog labeled
// with its true role, so precision can be computed exactly instead of by
// manual inspection; each generated flow is recorded with its location,
// sanitization status, and exploitability for the Table 6/7 experiments.
package corpus

import "seldon/internal/propgraph"

// vulnClass groups APIs that combine into one vulnerability family.
type vulnClass string

const (
	classSQL   vulnClass = "sql"
	classXSS   vulnClass = "xss"
	classPath  vulnClass = "path"
	classCmd   vulnClass = "cmd"
	classCode  vulnClass = "code"
	classRedir vulnClass = "redirect"
)

// apiTemplate describes one catalog API: the import lines it needs, a code
// template, and the representation the dataflow analyzer will derive (used
// as ground truth). Seeded marks APIs present in the paper's App. B seed;
// the rest are the "new" specifications Seldon should learn.
type apiTemplate struct {
	imports []string
	// code is a Python expression with %s placeholders for arguments.
	code string
	// rep is the fully qualified representation of the resulting event.
	rep    string
	role   propgraph.Role
	class  vulnClass
	seeded bool
}

// sourceAPIs produce user-controlled data. The %s is the parameter name.
var sourceAPIs = []apiTemplate{
	{imports: []string{"from flask import request"},
		code: "request.args.get('%s')", rep: "flask.request.args.get()",
		role: propgraph.Source, seeded: true},
	{imports: []string{"from flask import request"},
		code: "request.form.get('%s')", rep: "flask.request.form.get()",
		role: propgraph.Source, seeded: true},
	{imports: []string{"from flask import request"},
		code: "request.files['f'].filename", rep: "flask.request.files['f'].filename",
		role: propgraph.Source},
	{imports: []string{"from flask import request"},
		code: "request.headers.get('%s')", rep: "flask.request.headers.get()",
		role: propgraph.Source},
	{imports: []string{"from flask import request"},
		code: "request.cookies.get('%s')", rep: "flask.request.cookies.get()",
		role: propgraph.Source},
	{imports: []string{"import webapi"},
		code: "webapi.get_param('%s')", rep: "webapi.get_param()",
		role: propgraph.Source},
	{imports: []string{"import bottle"},
		code: "bottle.request.query.get('%s')", rep: "bottle.request.query.get()",
		role: propgraph.Source},
	{imports: []string{"import cherryforms"},
		code: "cherryforms.field('%s')", rep: "cherryforms.field()",
		role: propgraph.Source},
}

// djangoSourceAPIs read user data from a `request` formal parameter
// (Django passes the request object into every view). Their events are
// parameter-rooted, so the learner sees both the view-specific and the
// shared `request.*` backoff representation — the paper's App. B seeds
// request.GET.get() and request.POST.get() in exactly this form.
var djangoSourceAPIs = []apiTemplate{
	{code: "request.GET.get('%s')", rep: "request.GET.get()",
		role: propgraph.Source, seeded: true},
	{code: "request.POST.get('%s')", rep: "request.POST.get()",
		role: propgraph.Source, seeded: true},
	{code: "request.META.get('%s')", rep: "request.META.get()",
		role: propgraph.Source},
	{code: "request.body.decode('%s')", rep: "request.body.decode()",
		role: propgraph.Source},
}

// sanitizerAPIs neutralize data for one vulnerability class. The %s is the
// value being sanitized.
var sanitizerAPIs = []apiTemplate{
	{imports: []string{"from werkzeug.utils import secure_filename"},
		code: "secure_filename(%s)", rep: "werkzeug.utils.secure_filename()",
		role: propgraph.Sanitizer, class: classPath, seeded: true},
	{imports: []string{"import pathguard"},
		code: "pathguard.canonical(%s)", rep: "pathguard.canonical()",
		role: propgraph.Sanitizer, class: classPath},
	{imports: []string{"from flask import escape"},
		code: "escape(%s)", rep: "flask.escape()",
		role: propgraph.Sanitizer, class: classXSS, seeded: true},
	{imports: []string{"import bleach"},
		code: "bleach.clean(%s)", rep: "bleach.clean()",
		role: propgraph.Sanitizer, class: classXSS, seeded: true},
	{imports: []string{"import htmlguard"},
		code: "htmlguard.scrub(%s)", rep: "htmlguard.scrub()",
		role: propgraph.Sanitizer, class: classXSS},
	{imports: []string{"import MySQLdb"},
		code: "MySQLdb.escape_string(%s)", rep: "MySQLdb.escape_string()",
		role: propgraph.Sanitizer, class: classSQL, seeded: true},
	{imports: []string{"import sqlguard"},
		code: "sqlguard.quote(%s)", rep: "sqlguard.quote()",
		role: propgraph.Sanitizer, class: classSQL},
	{imports: []string{"import shellguard"},
		code: "shellguard.quote_arg(%s)", rep: "shellguard.quote_arg()",
		role: propgraph.Sanitizer, class: classCmd},
	{imports: []string{"import urlguard"},
		code: "urlguard.same_origin(%s)", rep: "urlguard.same_origin()",
		role: propgraph.Sanitizer, class: classRedir},
}

// sinkAPIs are security-critical operations. The %s is the tainted value.
var sinkAPIs = []apiTemplate{
	{imports: []string{"import os"},
		code: "os.system(%s)", rep: "os.system()",
		role: propgraph.Sink, class: classCmd, seeded: true},
	{imports: []string{"import subprocess"},
		code: "subprocess.call(%s)", rep: "subprocess.call()",
		role: propgraph.Sink, class: classCmd, seeded: true},
	{imports: []string{"import shellrun"},
		code: "shellrun.invoke(%s)", rep: "shellrun.invoke()",
		role: propgraph.Sink, class: classCmd},
	{imports: []string{"from flask import render_template_string"},
		code: "render_template_string(%s)", rep: "flask.render_template_string()",
		role: propgraph.Sink, class: classXSS, seeded: true},
	{imports: []string{"from flask import Response"},
		code: "Response(%s)", rep: "flask.Response()",
		role: propgraph.Sink, class: classXSS, seeded: true},
	{imports: []string{"import htmlout"},
		code: "htmlout.emit(%s)", rep: "htmlout.emit()",
		role: propgraph.Sink, class: classXSS},
	{imports: []string{"from flask import send_file"},
		code: "send_file(%s)", rep: "flask.send_file()",
		role: propgraph.Sink, class: classPath, seeded: true},
	{imports: []string{"import filestore"},
		code: "filestore.write_to(%s)", rep: "filestore.write_to()",
		role: propgraph.Sink, class: classPath},
	{imports: []string{"from flask import redirect"},
		code: "redirect(%s)", rep: "flask.redirect()",
		role: propgraph.Sink, class: classRedir, seeded: true},
	{imports: []string{"import webdb"},
		code: "webdb.runquery(%s)", rep: "webdb.runquery()",
		role: propgraph.Sink, class: classSQL},
	{imports: []string{"import templating"},
		code: "templating.render_raw(%s)", rep: "templating.render_raw()",
		role: propgraph.Sink, class: classCode},
}

// noneAPIs are security-irrelevant calls sprinkled into handlers; they
// must not be learned as any role (false-positive probes). The first five
// are unary shaping calls usable as pass-throughs.
var noneAPIs = []apiTemplate{
	{imports: []string{"import textutil"}, code: "textutil.titlecase(%s)", rep: "textutil.titlecase()"},
	{imports: []string{"import textutil"}, code: "textutil.wordcount(%s)", rep: "textutil.wordcount()"},
	{imports: []string{"import metrics"}, code: "metrics.observe(%s)", rep: "metrics.observe()"},
	{imports: []string{"import cachelib"}, code: "cachelib.memoize(%s)", rep: "cachelib.memoize()"},
	{imports: []string{"import validators"}, code: "validators.is_email(%s)", rep: "validators.is_email()"},
	{imports: []string{"import mathx"}, code: "mathx.mean([1, 2, 3])", rep: "mathx.mean()"},
	{imports: []string{"import clock"}, code: "clock.now_iso()", rep: "clock.now_iso()"},
	{imports: []string{"import strfmt"}, code: "strfmt.pad(%s)", rep: "strfmt.pad()"},
	{imports: []string{"import strfmt"}, code: "strfmt.dedent(%s)", rep: "strfmt.dedent()"},
	{imports: []string{"import listops"}, code: "listops.chunked(%s)", rep: "listops.chunked()"},
	{imports: []string{"import listops"}, code: "listops.flatten(%s)", rep: "listops.flatten()"},
	{imports: []string{"import confkit"}, code: "confkit.lookup(%s)", rep: "confkit.lookup()"},
	{imports: []string{"import confkit"}, code: "confkit.section(%s)", rep: "confkit.section()"},
	{imports: []string{"import timefmt"}, code: "timefmt.humanize(%s)", rep: "timefmt.humanize()"},
	{imports: []string{"import idgen"}, code: "idgen.slug(%s)", rep: "idgen.slug()"},
	{imports: []string{"import colorsx"}, code: "colorsx.darken(%s)", rep: "colorsx.darken()"},
	{imports: []string{"import tablefmt"}, code: "tablefmt.align(%s)", rep: "tablefmt.align()"},
	{imports: []string{"import geoutil"}, code: "geoutil.distance(%s)", rep: "geoutil.distance()"},
	{imports: []string{"import unitconv"}, code: "unitconv.to_celsius(%s)", rep: "unitconv.to_celsius()"},
	{imports: []string{"import statlib"}, code: "statlib.variance(%s)", rep: "statlib.variance()"},
}

// djangoViewNames is the pool of Django-style view names. Like real
// Django projects, names repeat across files, so parameter events such as
// profile_view(param request) survive the frequency cutoff and can be
// learned as sources (the paper's Table 8 lists robots(param request) and
// friends).
var djangoViewNames = []string{
	"profile_view", "search_view", "detail_view", "index_view",
	"comment_view", "upload_view", "export_view", "settings_view",
}

// sharedHelperNames is the pool of helper-function names reused across
// noise files. Real codebases repeat the same conventional names project
// after project, so their parameter events survive the frequency cutoff
// and become candidate events — keeping the fraction of role-carrying
// candidates low, as in the paper's dataset (3.27%).
var sharedHelperNames = []string{
	"load_config", "render_page", "format_row", "build_index", "merge_maps",
	"apply_defaults", "normalize_keys", "collect_stats", "prepare_context",
	"resolve_path", "group_items", "summarize", "paginate", "decorate",
	"transform", "serialize_row", "parse_row", "diff_items", "select_fields",
	"annotate",
}

// sanitizersFor returns the catalog sanitizers usable for a class.
func sanitizersFor(class vulnClass) []apiTemplate {
	var out []apiTemplate
	for _, s := range sanitizerAPIs {
		if s.class == class {
			out = append(out, s)
		}
	}
	return out
}

// sinksFor returns the catalog sinks for a class.
func sinksFor(class vulnClass) []apiTemplate {
	var out []apiTemplate
	for _, s := range sinkAPIs {
		if s.class == class {
			out = append(out, s)
		}
	}
	return out
}

// allClasses lists the vulnerability classes with at least one sink and
// one sanitizer.
var allClasses = []vulnClass{classSQL, classXSS, classPath, classCmd, classRedir}
