package factorgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddFactorValidation(t *testing.T) {
	g := &Graph{NumVars: 2}
	if err := g.AddFactor(Factor{Vars: []int{0}, Table: []float64{1, 2, 3}}); err == nil {
		t.Error("wrong table size accepted")
	}
	if err := g.AddFactor(Factor{Vars: []int{5}, Table: []float64{1, 2}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if err := g.AddFactor(UnaryFactor(0, 0.3, 0.7)); err != nil {
		t.Errorf("valid factor rejected: %v", err)
	}
}

func TestScore(t *testing.T) {
	g := &Graph{NumVars: 2}
	_ = g.AddFactor(UnaryFactor(0, 0.2, 0.8))
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Table: []float64{1, 2, 3, 4}})
	// x = (1, 0): unary 0.8, pair index 0b01 = 2.
	got := g.Score([]bool{true, false})
	if math.Abs(got-0.8*2) > 1e-12 {
		t.Errorf("score = %v, want 1.6", got)
	}
}

func TestBPUnaryOnly(t *testing.T) {
	g := &Graph{NumVars: 1}
	_ = g.AddFactor(UnaryFactor(0, 0.25, 0.75))
	r := g.BeliefPropagation(BPOptions{})
	if math.Abs(r.Marginals[0]-0.75) > 1e-6 {
		t.Errorf("marginal = %v, want 0.75", r.Marginals[0])
	}
	if !r.Converged {
		t.Error("unary graph must converge")
	}
}

// On tree-structured graphs BP is exact: compare with enumeration.
func TestBPExactOnTree(t *testing.T) {
	g := &Graph{NumVars: 3}
	_ = g.AddFactor(UnaryFactor(0, 0.4, 0.6))
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Table: []float64{0.9, 0.2, 0.3, 0.8}})
	_ = g.AddFactor(Factor{Vars: []int{1, 2}, Table: []float64{0.7, 0.1, 0.4, 0.9}})
	want, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	r := g.BeliefPropagation(BPOptions{MaxIterations: 300})
	for v := range want {
		if math.Abs(r.Marginals[v]-want[v]) > 1e-3 {
			t.Errorf("marginal[%d] = %v, want %v", v, r.Marginals[v], want[v])
		}
	}
}

func TestBPHardEvidencePropagates(t *testing.T) {
	// x0 pinned to 1; pair factor strongly correlates x1 with x0.
	g := &Graph{NumVars: 2}
	_ = g.AddFactor(UnaryFactor(0, 0, 1))
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Table: []float64{0.9, 0.1, 0.1, 0.9}})
	r := g.BeliefPropagation(BPOptions{})
	if r.Marginals[0] < 0.999 {
		t.Errorf("pinned marginal = %v", r.Marginals[0])
	}
	if r.Marginals[1] < 0.85 {
		t.Errorf("correlated marginal = %v, want ~0.9", r.Marginals[1])
	}
}

func TestGibbsMatchesExactOnSmallGraph(t *testing.T) {
	g := &Graph{NumVars: 3}
	_ = g.AddFactor(UnaryFactor(0, 0.3, 0.7))
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Table: []float64{0.8, 0.3, 0.3, 0.8}})
	_ = g.AddFactor(Factor{Vars: []int{1, 2}, Table: []float64{0.6, 0.4, 0.4, 0.6}})
	want, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	got := g.Gibbs(GibbsOptions{Burn: 200, Samples: 4000}, rand.New(rand.NewSource(7)))
	for v := range want {
		if math.Abs(got[v]-want[v]) > 0.05 {
			t.Errorf("gibbs[%d] = %v, want %v ± 0.05", v, got[v], want[v])
		}
	}
}

func TestGibbsDeterministicGivenSeed(t *testing.T) {
	g := &Graph{NumVars: 2}
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Table: []float64{0.9, 0.2, 0.2, 0.9}})
	a := g.Gibbs(GibbsOptions{Burn: 10, Samples: 50}, rand.New(rand.NewSource(1)))
	b := g.Gibbs(GibbsOptions{Burn: 10, Samples: 50}, rand.New(rand.NewSource(1)))
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("gibbs not reproducible with fixed seed")
		}
	}
}

func TestExactMarginalsRejectsLargeGraphs(t *testing.T) {
	g := &Graph{NumVars: 25}
	if _, err := g.ExactMarginals(); err == nil {
		t.Error("expected size error")
	}
}

// Property: BP marginals are always valid probabilities, and pinned
// variables keep their pinned value, on random pairwise graphs.
func TestBPMarginalsValidProperty(t *testing.T) {
	f := func(pairs []uint8, pin bool) bool {
		n := 5
		g := &Graph{NumVars: n}
		if pin {
			_ = g.AddFactor(UnaryFactor(0, 0, 1))
		}
		for i := 0; i+2 < len(pairs); i += 3 {
			a, b := int(pairs[i])%n, int(pairs[i+1])%n
			if a == b {
				continue
			}
			w := 0.1 + float64(pairs[i+2]%8)/10
			_ = g.AddFactor(Factor{Vars: []int{a, b},
				Table: []float64{w, 1 - w, 1 - w, w}})
		}
		r := g.BeliefPropagation(BPOptions{MaxIterations: 50})
		for v, m := range r.Marginals {
			if m < -1e-9 || m > 1+1e-9 || math.IsNaN(m) {
				return false
			}
			if pin && v == 0 && m < 0.99 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestThreeVariableImplicationFactor(t *testing.T) {
	// The Merlin Fig. 6a shape: if x0 (source) and x2 (sink) then x1
	// (sanitizer). Pin x0 and x2; x1's marginal must rise above 0.5.
	table := make([]float64, 8)
	for idx := range table {
		x0 := idx&1 == 1
		x1 := idx&2 == 2
		x2 := idx&4 == 4
		if x0 && x2 && !x1 {
			table[idx] = 0.1
		} else {
			table[idx] = 0.9
		}
	}
	g := &Graph{NumVars: 3}
	_ = g.AddFactor(UnaryFactor(0, 0, 1))
	_ = g.AddFactor(UnaryFactor(2, 0, 1))
	_ = g.AddFactor(Factor{Vars: []int{0, 1, 2}, Table: table})
	r := g.BeliefPropagation(BPOptions{})
	if r.Marginals[1] < 0.8 {
		t.Errorf("sanitizer marginal = %v, want >= 0.8", r.Marginals[1])
	}
}
