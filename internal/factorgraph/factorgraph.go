// Package factorgraph implements discrete factor graphs over binary
// variables with two inference engines written from scratch: loopy belief
// propagation (the sum-product algorithm, Yedidia et al.) and Gibbs
// sampling. It is the substrate for the Merlin baseline (paper §6.3),
// replacing Infer.NET's Expectation Propagation.
package factorgraph

import (
	"fmt"
	"math"
	"math/rand"
)

// Factor is a potential over a subset of binary variables. Table has
// 2^len(Vars) entries; the entry for an assignment is indexed by the bits
// of the assignment, bit i being the value of Vars[i].
type Factor struct {
	Vars  []int
	Table []float64
}

// UnaryFactor builds a prior factor: p0 for x=0, p1 for x=1.
func UnaryFactor(v int, p0, p1 float64) Factor {
	return Factor{Vars: []int{v}, Table: []float64{p0, p1}}
}

// Graph is a factor graph over NumVars binary variables.
type Graph struct {
	NumVars int
	Factors []Factor
}

// AddFactor appends a factor after validating its shape.
func (g *Graph) AddFactor(f Factor) error {
	if len(f.Table) != 1<<len(f.Vars) {
		return fmt.Errorf("factorgraph: factor over %d vars needs %d entries, got %d",
			len(f.Vars), 1<<len(f.Vars), len(f.Table))
	}
	for _, v := range f.Vars {
		if v < 0 || v >= g.NumVars {
			return fmt.Errorf("factorgraph: variable %d out of range [0,%d)", v, g.NumVars)
		}
	}
	g.Factors = append(g.Factors, f)
	return nil
}

// Score returns the unnormalized probability of a full assignment: the
// product of all factor entries (Eq. 12 of the paper).
func (g *Graph) Score(x []bool) float64 {
	p := 1.0
	for i := range g.Factors {
		f := &g.Factors[i]
		idx := 0
		for b, v := range f.Vars {
			if x[v] {
				idx |= 1 << b
			}
		}
		p *= f.Table[idx]
	}
	return p
}

// BPOptions configures loopy belief propagation.
type BPOptions struct {
	MaxIterations int     // default 100
	Damping       float64 // new = damping*old + (1-damping)*new; default 0.3
	Tolerance     float64 // max message change for convergence; default 1e-6
}

func (o BPOptions) withDefaults() BPOptions {
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	if o.Damping == 0 {
		o.Damping = 0.3
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// BPResult holds marginals and convergence information.
type BPResult struct {
	// Marginals[i] is the estimated P(x_i = 1).
	Marginals  []float64
	Iterations int
	Converged  bool
}

// BeliefPropagation runs the sum-product algorithm with flooding schedule
// and damping, returning per-variable marginals (Eq. 13).
func (g *Graph) BeliefPropagation(opts BPOptions) *BPResult {
	opts = opts.withDefaults()
	var edges []bpEdge
	varEdges := make([][]int, g.NumVars)      // variable -> incident edge indices
	factorBase := make([]int, len(g.Factors)) // first edge index per factor
	for fi := range g.Factors {
		factorBase[fi] = len(edges)
		for vi, v := range g.Factors[fi].Vars {
			varEdges[v] = append(varEdges[v], len(edges))
			edges = append(edges, bpEdge{fi, vi})
		}
	}
	// Messages are distributions over {0,1}, stored as P(x=1) after
	// normalization; keep both components for numerical clarity.
	msgFV := make([][2]float64, len(edges)) // factor -> variable
	msgVF := make([][2]float64, len(edges)) // variable -> factor
	for i := range edges {
		msgFV[i] = [2]float64{0.5, 0.5}
		msgVF[i] = [2]float64{0.5, 0.5}
	}

	normalize := func(m [2]float64) [2]float64 {
		s := m[0] + m[1]
		if s <= 0 || math.IsNaN(s) {
			return [2]float64{0.5, 0.5}
		}
		return [2]float64{m[0] / s, m[1] / s}
	}

	// Per-variable aggregates for the variable -> factor pass, computed in
	// log space so that products over thousands of incident factors (the
	// degree a collapsed graph produces) neither underflow nor cost
	// O(degree) per outgoing message.
	logSum := make([][2]float64, g.NumVars)
	zeroCount := make([][2]int, g.NumVars)

	iters := 0
	converged := false
	for t := 0; t < opts.MaxIterations; t++ {
		iters = t + 1
		maxDelta := 0.0

		// Aggregate incoming factor -> variable messages per variable.
		for v := 0; v < g.NumVars; v++ {
			logSum[v] = [2]float64{}
			zeroCount[v] = [2]int{}
			for _, ei := range varEdges[v] {
				for bit := 0; bit < 2; bit++ {
					if m := msgFV[ei][bit]; m > 0 {
						logSum[v][bit] += math.Log(m)
					} else {
						zeroCount[v][bit]++
					}
				}
			}
		}

		// Variable -> factor messages: product of all incoming except the
		// target factor's own message, recovered from the aggregates.
		for ei := range edges {
			e := edges[ei]
			v := g.Factors[e.factor].Vars[e.varIdx]
			var m [2]float64
			for bit := 0; bit < 2; bit++ {
				in := msgFV[ei][bit]
				switch {
				case in > 0 && zeroCount[v][bit] > 0:
					m[bit] = 0 // some other incoming message is zero
				case in > 0:
					m[bit] = math.Exp(logSum[v][bit] - math.Log(in))
				case zeroCount[v][bit] > 1:
					m[bit] = 0 // another zero remains after excluding ours
				default:
					m[bit] = math.Exp(logSum[v][bit])
				}
			}
			m = normalize(m)
			old := msgVF[ei]
			m[0] = opts.Damping*old[0] + (1-opts.Damping)*m[0]
			m[1] = opts.Damping*old[1] + (1-opts.Damping)*m[1]
			m = normalize(m)
			msgVF[ei] = m
		}

		// Factor -> variable messages.
		for ei := range edges {
			e := edges[ei]
			f := &g.Factors[e.factor]
			k := len(f.Vars)
			var m [2]float64
			for idx, val := range f.Table {
				p := val
				for b := 0; b < k; b++ {
					if b == e.varIdx {
						continue
					}
					// Edges are factor-major: slot b of this factor is at
					// a fixed offset from the factor's first edge.
					nei := factorBase[e.factor] + b
					bit := (idx >> b) & 1
					p *= msgVF[nei][bit]
				}
				m[(idx>>e.varIdx)&1] += p
			}
			m = normalize(m)
			old := msgFV[ei]
			m[0] = opts.Damping*old[0] + (1-opts.Damping)*m[0]
			m[1] = opts.Damping*old[1] + (1-opts.Damping)*m[1]
			m = normalize(m)
			if d := math.Abs(m[1] - old[1]); d > maxDelta {
				maxDelta = d
			}
			msgFV[ei] = m
		}

		if maxDelta < opts.Tolerance {
			converged = true
			break
		}
	}

	// Beliefs, again via log sums to survive high variable degrees.
	marginals := make([]float64, g.NumVars)
	for v := 0; v < g.NumVars; v++ {
		ls := [2]float64{}
		zc := [2]int{}
		for _, ei := range varEdges[v] {
			for bit := 0; bit < 2; bit++ {
				if m := msgFV[ei][bit]; m > 0 {
					ls[bit] += math.Log(m)
				} else {
					zc[bit]++
				}
			}
		}
		var b [2]float64
		shift := math.Max(ls[0], ls[1])
		for bit := 0; bit < 2; bit++ {
			if zc[bit] > 0 {
				b[bit] = 0
			} else {
				b[bit] = math.Exp(ls[bit] - shift)
			}
		}
		b = normalize(b)
		marginals[v] = b[1]
	}
	return &BPResult{Marginals: marginals, Iterations: iters, Converged: converged}
}

// bpEdge identifies one (factor, variable-slot) connection.
type bpEdge struct {
	factor, varIdx int // varIdx indexes Factors[factor].Vars
}

// GibbsOptions configures Gibbs sampling.
type GibbsOptions struct {
	Burn    int // burn-in sweeps; default 100
	Samples int // recorded sweeps; default 400
}

func (o GibbsOptions) withDefaults() GibbsOptions {
	if o.Burn == 0 {
		o.Burn = 100
	}
	if o.Samples == 0 {
		o.Samples = 400
	}
	return o
}

// Gibbs estimates marginals by Gibbs sampling. The caller provides the
// random source for reproducibility.
func (g *Graph) Gibbs(opts GibbsOptions, rng *rand.Rand) []float64 {
	opts = opts.withDefaults()
	x := make([]bool, g.NumVars)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	// Per-variable incident factors.
	incident := make([][]int, g.NumVars)
	for fi := range g.Factors {
		for _, v := range g.Factors[fi].Vars {
			incident[v] = append(incident[v], fi)
		}
	}
	localScore := func(v int, val bool) float64 {
		x[v] = val
		p := 1.0
		for _, fi := range incident[v] {
			f := &g.Factors[fi]
			idx := 0
			for b, fv := range f.Vars {
				if x[fv] {
					idx |= 1 << b
				}
			}
			p *= f.Table[idx]
		}
		return p
	}
	counts := make([]float64, g.NumVars)
	total := 0
	for sweep := 0; sweep < opts.Burn+opts.Samples; sweep++ {
		for v := 0; v < g.NumVars; v++ {
			p0 := localScore(v, false)
			p1 := localScore(v, true)
			if p0+p1 <= 0 {
				x[v] = rng.Intn(2) == 1
				continue
			}
			x[v] = rng.Float64() < p1/(p0+p1)
		}
		if sweep >= opts.Burn {
			total++
			for v, b := range x {
				if b {
					counts[v]++
				}
			}
		}
	}
	for v := range counts {
		counts[v] /= float64(total)
	}
	return counts
}

// ExactMarginals computes marginals by brute-force enumeration; usable
// only for small graphs (≤ 20 variables) and used in tests as ground truth.
func (g *Graph) ExactMarginals() ([]float64, error) {
	if g.NumVars > 20 {
		return nil, fmt.Errorf("factorgraph: %d variables too many for exact inference", g.NumVars)
	}
	marg := make([]float64, g.NumVars)
	z := 0.0
	x := make([]bool, g.NumVars)
	for a := 0; a < 1<<g.NumVars; a++ {
		for v := range x {
			x[v] = (a>>v)&1 == 1
		}
		p := g.Score(x)
		z += p
		for v := range x {
			if x[v] {
				marg[v] += p
			}
		}
	}
	if z == 0 {
		return nil, fmt.Errorf("factorgraph: partition function is zero")
	}
	for v := range marg {
		marg[v] /= z
	}
	return marg, nil
}
