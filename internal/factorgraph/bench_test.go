package factorgraph

import (
	"math/rand"
	"testing"
)

// grid builds a deterministic pairwise graph with a few high-degree
// variables (the shape collapsed propagation graphs produce).
func grid(nVars, nFactors int) *Graph {
	g := &Graph{NumVars: nVars}
	for i := 0; i < nFactors; i++ {
		a := (i * 7) % nVars
		b := i % 5 // a handful of hub variables with huge degree
		if a == b {
			a = (a + 1) % nVars
		}
		_ = g.AddFactor(Factor{Vars: []int{a, b},
			Table: []float64{0.9, 0.4, 0.4, 0.9}})
	}
	return g
}

func BenchmarkBeliefPropagation(b *testing.B) {
	g := grid(2000, 20000)
	for i := 0; i < b.N; i++ {
		g.BeliefPropagation(BPOptions{MaxIterations: 25})
	}
}

func BenchmarkGibbs(b *testing.B) {
	g := grid(500, 5000)
	for i := 0; i < b.N; i++ {
		g.Gibbs(GibbsOptions{Burn: 20, Samples: 80}, rand.New(rand.NewSource(1)))
	}
}
