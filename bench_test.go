// Package seldon_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (§7). Each benchmark
// runs the corresponding experiment end-to-end over the synthetic corpus
// and reports, besides ns/op, the experiment's headline metrics via
// b.ReportMetric, so `go test -bench=.` reproduces the paper's numbers.
//
// Mapping (see DESIGN.md for the full index):
//
//	BenchmarkTable1DatasetStats      — Table 1
//	BenchmarkTable2MerlinScalability — Table 2
//	BenchmarkTable3MerlinPrecision95 — Table 3
//	BenchmarkTable4MerlinTop5        — Table 4
//	BenchmarkTable5SeldonPrecision   — Table 5
//	BenchmarkTable6BugCategories     — Table 6
//	BenchmarkTable7ReportCounts      — Table 7
//	BenchmarkFig10Scaling            — Figure 10
//	BenchmarkFig11ScorePrecision     — Figure 11
//	BenchmarkQ5CrossProject          — §7.5 Q5
//	BenchmarkQ6SeedAblation          — §7.5 Q6
//	BenchmarkQ7BugClasses            — §7.5 Q7 / App. C
//	BenchmarkAblation*               — design-choice ablations (§4.2, §4.4, §4.3)
package seldon_test

import (
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/eval"
	"seldon/internal/propgraph"
	"seldon/internal/report"
)

// benchFiles sizes the benchmark corpus; large enough for stable learning
// dynamics, small enough for `go test -bench=.` to stay in minutes.
const benchFiles = 240

func newExperiments() *report.Experiments {
	return report.New(corpus.Config{Files: benchFiles, Seed: 1})
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t1 := e.RunTable1()
		b.ReportMetric(float64(t1.Candidates), "candidates")
		b.ReportMetric(t1.AvgBackoff, "avg-backoff")
		b.ReportMetric(float64(t1.Constraints), "constraints")
	}
}

func BenchmarkTable2MerlinScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t2 := e.RunTable2()
		small, large := t2.Rows[1], t2.Rows[3] // uncollapsed rows
		b.ReportMetric(float64(small.Factors), "factors-small")
		b.ReportMetric(float64(large.Factors), "factors-large")
		b.ReportMetric(large.Time.Seconds(), "merlin-large-s")
		b.ReportMetric(t2.SeldonLargeTime.Seconds(), "seldon-large-s")
	}
}

func BenchmarkTable3MerlinPrecision95(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t3 := e.RunTable3()
		n, correct := 0, 0.0
		for _, row := range t3.Uncollapsed {
			n += row.Number
			correct += row.Precision * float64(row.Number)
		}
		if n > 0 {
			b.ReportMetric(correct/float64(n), "precision")
		}
		b.ReportMetric(float64(n), "predictions")
	}
}

func BenchmarkTable4MerlinTop5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t4 := e.RunTable4()
		n, correct := 0, 0.0
		for _, row := range t4.Collapsed {
			n += row.Number
			correct += row.Precision * float64(row.Number)
		}
		if n > 0 {
			b.ReportMetric(correct/float64(n), "precision")
		}
	}
}

func BenchmarkTable5SeldonPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t5 := e.RunTable5()
		b.ReportMetric(t5.OverallPrecision, "precision")
		b.ReportMetric(t5.Recall.Fraction(), "catalog-recall")
		b.ReportMetric(float64(t5.OverallPredicted), "predicted")
		for _, row := range t5.Rows {
			switch row.Role {
			case propgraph.Source:
				b.ReportMetric(row.Precision, "src-precision")
			case propgraph.Sanitizer:
				b.ReportMetric(row.Precision, "san-precision")
			case propgraph.Sink:
				b.ReportMetric(row.Precision, "snk-precision")
			}
		}
	}
}

func BenchmarkTable6BugCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t6 := e.RunTable6()
		b.ReportMetric(float64(t6.Seed[eval.MissingSanitizer]), "seed-missing-san")
		b.ReportMetric(float64(t6.Inferred[eval.MissingSanitizer]), "inf-missing-san")
		b.ReportMetric(float64(t6.Inferred[eval.TrueVulnerability]), "inf-true-vuln")
	}
}

func BenchmarkTable7ReportCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		t7 := e.RunTable7()
		b.ReportMetric(float64(t7.Seed.Reports), "seed-reports")
		b.ReportMetric(float64(t7.Inferred.Reports), "inferred-reports")
		b.ReportMetric(float64(t7.Inferred.EstimatedVuln), "est-vulns")
	}
}

func BenchmarkFig10Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		fig := e.RunFig10([]int{60, 120, 240})
		first, last := fig.Points[0], fig.Points[len(fig.Points)-1]
		b.ReportMetric(float64(first.Constraints), "constraints-60f")
		b.ReportMetric(float64(last.Constraints), "constraints-240f")
		// Linearity indicator: constraints per file should stay flat.
		b.ReportMetric(float64(last.Constraints)/float64(last.Files), "constraints-per-file")
		b.ReportMetric(last.Time.Seconds(), "solve-240f-s")
	}
}

func BenchmarkFig11ScorePrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		fig := e.RunFig11()
		for _, role := range propgraph.Roles() {
			curve := fig.Curves[role]
			if len(curve) > 0 {
				b.ReportMetric(curve[len(curve)-1].CumPrecision, role.String()+"-final-prec")
			}
		}
	}
}

func BenchmarkQ5CrossProject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		q5 := e.RunQ5(3)
		var indiv, proj float64
		newRoles := 0
		for _, p := range q5.Projects {
			indiv += p.IndividualPrecision
			proj += p.ProjectedPrecision
			newRoles += p.NewTrueRoles
		}
		n := float64(len(q5.Projects))
		b.ReportMetric(indiv/n, "individual-precision")
		b.ReportMetric(proj/n, "projected-precision")
		b.ReportMetric(float64(newRoles), "new-true-roles")
	}
}

func BenchmarkQ6SeedAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		q6 := e.RunQ6()
		b.ReportMetric(q6.Rows[0].Precision, "full-seed-precision")
		b.ReportMetric(q6.Rows[1].Precision, "half-seed-precision")
		b.ReportMetric(float64(q6.Rows[2].Predicted), "empty-seed-predictions")
	}
}

func BenchmarkQ7BugClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		q7 := e.RunQ7()
		b.ReportMetric(float64(q7.Total), "confirmed-vulns")
	}
}

// ---------------------------------------------------------------------------
// Ablations over the design choices called out in DESIGN.md.

// learnWith runs full-corpus learning under a modified configuration and
// returns overall precision and prediction count.
func learnWith(mutate func(*core.Config)) (precision float64, predicted int) {
	c := corpus.Generate(corpus.Config{Files: benchFiles, Seed: 1})
	seed := corpus.ExperimentSeed()
	cfg := core.Config{}
	mutate(&cfg)
	res := core.LearnFromSources(c.FileMap(), seed, cfg)
	entries := res.LearnedEntries(seed)
	pr := eval.SamplePrecision(entries, c.Truth, 50, 1)
	return pr.Overall().Precision(), len(entries)
}

// BenchmarkAblationC compares the implication-strength constant C = 0.75
// (the paper's choice) with C = 1 (§4.2: "performs significantly better
// than C = 1").
func BenchmarkAblationC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p75, n75 := learnWith(func(c *core.Config) { c.Constraints.C = 0.75 })
		p100, n100 := learnWith(func(c *core.Config) { c.Constraints.C = 1.0 })
		b.ReportMetric(p75, "precision-C0.75")
		b.ReportMetric(float64(n75), "specs-C0.75")
		b.ReportMetric(p100, "precision-C1.0")
		b.ReportMetric(float64(n100), "specs-C1.0")
	}
}

// BenchmarkAblationLambda sweeps the L1 weight (§4.4: "decreasing λ by a
// factor of 10 increases the number of inferred specifications by a
// factor of around 2").
func BenchmarkAblationLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lambda := range []float64{0.01, 0.1, 1.0} {
			_, n := learnWith(func(c *core.Config) { c.Constraints.Lambda = lambda })
			switch lambda {
			case 0.01:
				b.ReportMetric(float64(n), "specs-lambda0.01")
			case 0.1:
				b.ReportMetric(float64(n), "specs-lambda0.1")
			case 1.0:
				b.ReportMetric(float64(n), "specs-lambda1.0")
			}
		}
	}
}

// BenchmarkAblationBackoff compares full backoff (§4.3) with the
// most-specific-representation-only variant used by the adapted Merlin
// (§6.2), by raising the cutoff so high that only frequent suffixes
// survive versus keeping everything.
func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pFull, nFull := learnWith(func(c *core.Config) { c.Constraints.BackoffCutoff = 5 })
		pNone, nNone := learnWith(func(c *core.Config) { c.Constraints.BackoffCutoff = 1 })
		b.ReportMetric(pFull, "precision-cutoff5")
		b.ReportMetric(float64(nFull), "specs-cutoff5")
		b.ReportMetric(pNone, "precision-cutoff1")
		b.ReportMetric(float64(nNone), "specs-cutoff1")
	}
}

// BenchmarkAblationArgSensitivity measures the §3.3 argument-sensitivity
// extension: restricting sinks to their dangerous argument removes the
// Table 6 "flows into wrong parameter" reports.
func BenchmarkAblationArgSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		a := e.RunArgSensitivity()
		b.ReportMetric(float64(a.PlainWrongParam), "wrongparam-plain")
		b.ReportMetric(float64(a.ArgAwareWrongParam), "wrongparam-argaware")
		b.ReportMetric(float64(a.TrueVulnArgAware), "true-vulns-kept")
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks: per-file pipeline cost.

func BenchmarkPipelinePerFile(b *testing.B) {
	c := corpus.Generate(corpus.Config{Files: 40, Seed: 1})
	files := c.FileMap()
	seed := corpus.ExperimentSeed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LearnFromSources(files, seed, core.Config{
			Constraints: constraints.Options{BackoffCutoff: 2},
		})
	}
}

// BenchmarkAblationCollapsedLearning compares specification learning on
// collapsed vs uncollapsed propagation graphs (§6.4).
func BenchmarkAblationCollapsedLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		c := e.RunCollapsedLearning()
		b.ReportMetric(c.UncollapsedPrecision, "uncollapsed-precision")
		b.ReportMetric(c.CollapsedPrecision, "collapsed-precision")
		b.ReportMetric(float64(c.CollapsedSpecs), "collapsed-specs")
	}
}

// BenchmarkMerlinSweep is the anti-Fig.10: Merlin factor growth vs Seldon
// time as application size quadruples.
func BenchmarkMerlinSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments()
		sweep := e.RunMerlinSweep([]int{24, 96}, true)
		small, large := sweep.Points[0], sweep.Points[1]
		b.ReportMetric(float64(small.MerlinFactors), "factors-24f")
		b.ReportMetric(float64(large.MerlinFactors), "factors-96f")
		b.ReportMetric(large.SeldonTime.Seconds(), "seldon-96f-s")
	}
}
